//! Cross-manager transfer — the paper's "BDD mapping" (`bddPool`, §IV-B).
//!
//! During `eliminate`, variables die as network nodes are collapsed; rather
//! than reorder a polluted manager full of unused variables, BDS initializes
//! a fresh manager containing only the *used* variables and reconstructs
//! each BDD there through a mapping function `F_M`. [`transfer`] is that
//! mechanism: it re-homes a function into any destination manager under an
//! arbitrary variable map, correctly handling a *different variable order*
//! in the destination (the rebuild goes through ITE, so level inversions
//! are resolved on the fly).

use std::collections::HashMap;

use crate::edge::{Edge, Var};
use crate::error::BddError;
use crate::hash::FastMap;
use crate::manager::Manager;
use crate::Result;

/// Re-homes `root` from `src` into `dst`, mapping each source variable `v`
/// to `var_map[v.index()]`.
///
/// The destination order may differ arbitrarily from the source order.
///
/// # Errors
/// [`BddError::BadVarMap`] if the map is shorter than the source variable
/// table or names a variable foreign to `dst`;
/// [`BddError::NodeLimit`] if `dst`'s node limit is hit.
///
/// # Example
///
/// ```
/// use bds_bdd::{Manager, transfer::transfer};
/// # fn main() -> Result<(), bds_bdd::BddError> {
/// let mut src = Manager::new();
/// let a = src.new_var("a");
/// let b = src.new_var("b");
/// let (la, lb) = (src.literal(a, true), src.literal(b, true));
/// let f = src.and(la, lb)?;
///
/// let mut dst = Manager::new();
/// let q = dst.new_var("q");
/// let p = dst.new_var("p");
/// // a ↦ p, b ↦ q (order inverted in dst).
/// let g = transfer(&src, &mut dst, f, &[p, q])?;
/// let (lp, lq) = (dst.literal(p, true), dst.literal(q, true));
/// assert_eq!(g, dst.and(lp, lq)?);
/// # Ok(())
/// # }
/// ```
pub fn transfer(src: &Manager, dst: &mut Manager, root: Edge, var_map: &[Var]) -> Result<Edge> {
    if var_map.len() < src.var_count() {
        return Err(BddError::BadVarMap {
            detail: format!(
                "map covers {} of {} source variables",
                var_map.len(),
                src.var_count()
            ),
        });
    }
    for &v in var_map.iter().take(src.var_count()) {
        dst.check_var(v)?;
    }
    let mut memo: FastMap<u32, Edge> = FastMap::default();
    let out = transfer_rec(src, dst, root, var_map, &mut memo)?;
    bds_trace::counter!("bdd.transfer.calls");
    bds_trace::counter_add!("bdd.transfer.nodes", memo.len() as u64);
    dst.audit()?;
    Ok(out)
}

/// Re-homes several roots at once, sharing the memo table (and therefore
/// the structure) across them.
///
/// # Errors
/// Same as [`transfer`].
pub fn transfer_all(
    src: &Manager,
    dst: &mut Manager,
    roots: &[Edge],
    var_map: &[Var],
) -> Result<Vec<Edge>> {
    let mut memo: FastMap<u32, Edge> = FastMap::default();
    transfer_all_into(src, dst, roots, var_map, &mut memo)
}

/// [`transfer_all`] with a caller-supplied memo, left populated with the
/// source-node → destination-edge mapping of every transferred node.
/// [`crate::reorder::reorder`] uses the mapping to re-home surviving
/// computed-table entries alongside the graph.
pub(crate) fn transfer_all_into(
    src: &Manager,
    dst: &mut Manager,
    roots: &[Edge],
    var_map: &[Var],
    memo: &mut FastMap<u32, Edge>,
) -> Result<Vec<Edge>> {
    if var_map.len() < src.var_count() {
        return Err(BddError::BadVarMap {
            detail: format!(
                "map covers {} of {} source variables",
                var_map.len(),
                src.var_count()
            ),
        });
    }
    for &v in var_map.iter().take(src.var_count()) {
        dst.check_var(v)?;
    }
    let out: Result<Vec<Edge>> = roots
        .iter()
        .map(|&r| transfer_rec(src, dst, r, var_map, memo))
        .collect();
    bds_trace::counter!("bdd.transfer.calls");
    bds_trace::counter_add!("bdd.transfer.nodes", memo.len() as u64);
    out
}

/// The destination image of a source edge under a transfer `memo`, or
/// `None` when the edge's node was not part of the transferred graph.
fn image(e: Edge, memo: &FastMap<u32, Edge>) -> Option<Edge> {
    if e.is_const() {
        return Some(e);
    }
    memo.get(&e.node())
        .map(|&m| m.complement_if(e.is_complemented()))
}

/// Re-homes the source manager's computed-table entries into `dst`
/// through a transfer `memo`, returning how many entries survived.
///
/// Only valid when `dst` uses the **same variable order** as `src`:
/// canonical ITE keys rank their arguments by level, so an entry's key
/// stays canonical in the destination exactly when every variable kept
/// its level. Entries naming any node outside the transferred graph
/// (dead operands or a dead result) are dropped — which also makes the
/// surviving set a pure function of the live graph, independent of
/// whatever garbage-collection history the source manager had.
pub(crate) fn transplant_cache(
    src: &Manager,
    dst: &mut Manager,
    memo: &FastMap<u32, Edge>,
) -> usize {
    debug_assert_eq!(
        src.order(),
        dst.order(),
        "cache transplant requires an unchanged order"
    );
    let mut kept = 0usize;
    for (key, &r) in &src.ite_cache {
        let (f, g, h) = key.unpack();
        let (Some(fi), Some(gi), Some(hi), Some(ri)) = (
            image(f, memo),
            image(g, memo),
            image(h, memo),
            image(r, memo),
        ) else {
            continue;
        };
        dst.ite_cache
            .insert(crate::nid::IteKey::pack(fi, gi, hi), ri);
        kept += 1;
    }
    bds_trace::counter_add!("bdd.transfer.cache_entries", kept as u64);
    kept
}

fn transfer_rec(
    src: &Manager,
    dst: &mut Manager,
    e: Edge,
    var_map: &[Var],
    memo: &mut FastMap<u32, Edge>,
) -> Result<Edge> {
    // Work on the regular node; re-apply the complement at the end. This
    // keeps the memo table keyed by node, not by edge.
    if e.is_const() {
        return Ok(e);
    }
    let node = e.node();
    let mapped = if let Some(&m) = memo.get(&node) {
        dst.ops.transfer_hits += 1;
        m
    } else {
        dst.ops.transfer_misses += 1;
        let (var, high, low) = src
            .node_raw(e.regular())
            // lint:allow(panic) — guarded: constants are handled in the other branch
            .expect("non-constant edge has a node");
        let h = transfer_rec(src, dst, high, var_map, memo)?;
        let l = transfer_rec(src, dst, low, var_map, memo)?;
        let dvar = var_map[var.index()];
        let lit = dst.literal(dvar, true);
        let m = dst.ite(lit, h, l)?;
        memo.insert(node, m);
        m
    };
    Ok(mapped.complement_if(e.is_complemented()))
}

/// Re-homes `roots` from `src` into `dst` matching variables **by
/// name**: every source variable whose name already exists in `dst`
/// maps onto it, and the rest are appended to `dst`'s order (in source
/// order). This is the ergonomic front door for worker seeding — a
/// thread that owns a private manager can adopt a function without
/// hand-building a [`Var`] map — and for stitching per-supernode
/// results whose managers were created independently.
///
/// Duplicate names in `src` resolve to the first `dst` match (manager
/// variable names are not required to be unique; callers that rely on
/// name matching should keep them so).
///
/// # Errors
/// [`BddError::NodeLimit`] if `dst`'s node limit is hit.
///
/// # Example
///
/// ```
/// use bds_bdd::{Manager, transfer::import};
/// # fn main() -> Result<(), bds_bdd::BddError> {
/// let mut src = Manager::new();
/// let a = src.new_var("a");
/// let b = src.new_var("b");
/// let (la, lb) = (src.literal(a, true), src.literal(b, true));
/// let f = src.and(la, lb)?;
///
/// let mut dst = Manager::new();
/// let db = dst.new_var("b"); // pre-existing, different position
/// let g = import(&src, &mut dst, &[f])?;
/// assert_eq!(dst.var_count(), 2);
/// let (la2, lb2) = (dst.literal(dst.order()[1], true), dst.literal(db, true));
/// let expect = dst.and(la2, lb2)?;
/// assert_eq!(g[0], expect);
/// # Ok(())
/// # }
/// ```
pub fn import(src: &Manager, dst: &mut Manager, roots: &[Edge]) -> Result<Vec<Edge>> {
    let mut by_name: HashMap<&str, Var> = HashMap::with_capacity(dst.var_count());
    for &v in &dst.order() {
        by_name.entry(dst.var_name(v)).or_insert(v);
    }
    // Resolve before mutating `dst`: names borrow from it.
    let resolved: Vec<Option<Var>> = (0..src.var_count())
        .map(|i| by_name.get(src.var_name(Var::from_index(i))).copied())
        .collect();
    let var_map: Vec<Var> = resolved
        .into_iter()
        .enumerate()
        .map(|(i, found)| match found {
            Some(v) => v,
            None => dst.new_var(src.var_name(Var::from_index(i))),
        })
        .collect();
    transfer_all(src, dst, roots, &var_map)
}

/// Rebuilds `roots` into a fresh manager containing **only** the support
/// variables, in their current relative order — the paper's BDD-mapping
/// compaction. Returns the new manager, the re-homed roots, and the map
/// from old [`Var`]s to new ones (entries for non-support variables map to
/// the same-index placeholder and must not be used).
pub fn compact(src: &Manager, roots: &[Edge]) -> Result<(Manager, Vec<Edge>, Vec<Var>)> {
    let support = src.support_of(roots);
    let mut dst = Manager::with_node_limit(src.node_limit());
    let var_map: Vec<Var> = (0..src.var_count()).map(Var::from_index).collect();
    if support.is_empty() {
        // Every root is constant; constants carry across managers
        // unchanged, and no variable in `var_map` is meaningful.
        return Ok((dst, roots.to_vec(), var_map));
    }
    let mut var_map = var_map;
    for &v in &support {
        let nv = dst.new_var(src.var_name(v));
        var_map[v.index()] = nv;
    }
    // Non-support variables would map out of range; point them at var 0 if
    // any exists (they cannot occur in the transferred graphs).
    if dst.var_count() > 0 {
        let fallback = Var::from_index(0);
        for (i, slot) in var_map.iter_mut().enumerate() {
            if !support.iter().any(|s| s.index() == i) {
                *slot = fallback;
            }
        }
    }
    let new_roots = transfer_all(src, &mut dst, roots, &var_map)?;
    dst.audit()?;
    Ok((dst, new_roots, var_map))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_identity_map() {
        let mut src = Manager::new();
        let vars = src.new_vars(3);
        let lits: Vec<Edge> = vars.iter().map(|&v| src.literal(v, true)).collect();
        let ab = src.and(lits[0], lits[1]).unwrap();
        let f = src.xor(ab, lits[2]).unwrap();

        let mut dst = Manager::new();
        let dvars = dst.new_vars(3);
        let g = transfer(&src, &mut dst, f, &dvars).unwrap();
        for bits in 0..8u32 {
            let assign: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(src.eval(f, &assign), dst.eval(g, &assign));
        }
    }

    #[test]
    fn transfer_with_reordering() {
        let mut src = Manager::new();
        let vars = src.new_vars(4);
        let lits: Vec<Edge> = vars.iter().map(|&v| src.literal(v, true)).collect();
        let ab = src.and(lits[0], lits[2]).unwrap();
        let cd = src.and(lits[1], lits[3]).unwrap();
        let f = src.or(ab, cd).unwrap();

        let mut dst = Manager::new();
        // Interleaved destination order: a, c, b, d by construction order.
        let da = dst.new_var("a");
        let dc = dst.new_var("c");
        let db = dst.new_var("b");
        let dd = dst.new_var("d");
        let g = transfer(&src, &mut dst, f, &[da, db, dc, dd]).unwrap();
        // f = a·c + b·d with the good interleaved order needs fewer nodes.
        assert!(dst.size(g) <= src.size(f));
        for bits in 0..16u32 {
            let assign: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            // dst assignments are indexed by dst variable index:
            // dst[0]=a, dst[1]=c, dst[2]=b, dst[3]=d.
            let dst_assign = [assign[0], assign[2], assign[1], assign[3]];
            assert_eq!(src.eval(f, &assign), dst.eval(g, &dst_assign));
        }
    }

    #[test]
    fn compact_drops_unused_vars() {
        let mut src = Manager::new();
        let vars = src.new_vars(10);
        let l3 = src.literal(vars[3], true);
        let l7 = src.literal(vars[7], true);
        let f = src.and(l3, l7).unwrap();
        let (dst, roots, map) = compact(&src, &[f]).unwrap();
        assert_eq!(dst.var_count(), 2);
        assert_eq!(dst.var_name(map[3]), "x3");
        assert_eq!(dst.var_name(map[7]), "x7");
        assert_eq!(dst.size(roots[0]), 3);
    }

    #[test]
    fn short_var_map_rejected() {
        let mut src = Manager::new();
        let _ = src.new_vars(2);
        let mut dst = Manager::new();
        let d = dst.new_var("d");
        let r = transfer(&src, &mut dst, Edge::ONE, &[d]);
        assert!(matches!(r, Err(BddError::BadVarMap { .. })));
    }
}
