//! Variable reordering by rebuild-based sifting.
//!
//! The BDS flow subjects every local BDD to variable reordering before
//! decomposition (paper §IV-C: "a BDD is first subjected to a variable
//! reordering \[30\] … a means to achieve an initial logic simplification").
//!
//! The original system used Rudell's in-place sifting. Because BDS-style
//! synthesis bounds the size of every *local* BDD (the `eliminate`
//! threshold), this reproduction uses the simpler and more robust
//! **rebuild-based sifting**: to evaluate a candidate position for a
//! variable, the BDD is rebuilt into a scratch manager with the permuted
//! order via [`transfer`](crate::transfer::transfer) (which routes through
//! ITE and therefore handles any order). The complexity is higher by a
//! constant factor, but on threshold-bounded BDDs it is immaterial and it
//! cannot corrupt the unique table. This substitution is recorded in
//! `DESIGN.md`.

use crate::edge::{Edge, Var};
use crate::manager::Manager;
use crate::Result;

/// Limits that keep sifting affordable.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SiftLimits {
    /// Skip sifting entirely when the shared size of the roots exceeds
    /// this (such BDDs should have been size-bounded upstream).
    pub max_nodes: usize,
    /// Maximum number of support variables to sift (the largest levels by
    /// node population are chosen first).
    pub max_vars: usize,
    /// Number of improvement passes over the variable list.
    pub passes: usize,
}

impl Default for SiftLimits {
    fn default() -> Self {
        SiftLimits {
            max_nodes: 20_000,
            max_vars: 24,
            passes: 1,
        }
    }
}

/// Rebuilds `roots` under an explicit new variable order.
///
/// `order` must be a permutation of all manager variables (level 0 first).
/// Returns a fresh manager plus the re-homed roots.
///
/// # Errors
/// [`crate::BddError::BadVarMap`] if `order` is not a permutation of the
/// manager's variables; [`crate::BddError::NodeLimit`] on blow-up.
pub fn reorder(src: &Manager, roots: &[Edge], order: &[Var]) -> Result<(Manager, Vec<Edge>)> {
    if order.len() != src.var_count() {
        return Err(crate::BddError::BadVarMap {
            detail: format!(
                "order lists {} of {} variables",
                order.len(),
                src.var_count()
            ),
        });
    }
    let mut seen = vec![false; src.var_count()];
    for &v in order {
        src.check_var(v)?;
        if std::mem::replace(&mut seen[v.index()], true) {
            return Err(crate::BddError::BadVarMap {
                detail: format!("variable {v} repeated in order"),
            });
        }
    }
    // Recreate the variables with their *identities* (indices and names)
    // unchanged, then impose the new order before any node exists. This
    // way callers' `Var` handles and evaluation assignments stay valid.
    let mut dst = Manager::with_node_limit(src.node_limit());
    let var_map: Vec<Var> = (0..src.var_count())
        .map(|i| dst.new_var(src.var_name(Var::from_index(i))))
        .collect();
    dst.set_order(order);
    let mut memo = crate::hash::FastMap::default();
    let new_roots = crate::transfer::transfer_all_into(src, &mut dst, roots, &var_map, &mut memo)?;
    // An order-preserving rebuild (the common "sifting found nothing"
    // case) keeps every canonical ITE key valid, so the computed-table
    // entries whose operands and result all survived come along — the
    // decompose phase that follows re-asks many build-phase triples and
    // now finds them instead of recomputing.
    if order == src.order() {
        crate::transfer::transplant_cache(src, &mut dst, &memo);
    }
    dst.audit()?;
    Ok((dst, new_roots))
}

/// Greedy sifting: for each support variable (largest level population
/// first), tries every position in the order and keeps the best, measured
/// by the shared node count of `roots`.
///
/// Returns `(manager, roots)` — a fresh manager when an improvement was
/// found, or a rebuild under the original order otherwise.
///
/// # Errors
/// Propagates node-limit errors from rebuilds (a candidate order whose
/// rebuild overflows is simply skipped; only the final rebuild can fail).
pub fn sift(src: &Manager, roots: &[Edge], limits: SiftLimits) -> Result<(Manager, Vec<Edge>)> {
    let _span = bds_trace::span!("bdd.sift");
    let base_order = src.order();
    let start_size = src.count_nodes(roots);
    if start_size > limits.max_nodes || src.var_count() <= 2 {
        return reorder(src, roots, &base_order);
    }

    // Current best.
    let (mut best_mgr, mut best_roots) = reorder(src, roots, &base_order)?;
    let mut best_size = best_mgr.count_nodes(&best_roots);

    for _pass in 0..limits.passes {
        bds_trace::counter!("bdd.reorder.passes");
        let improved_before_pass = best_size;
        // Sift the support variables, most populous level first.
        let support = best_mgr.support_of(&best_roots);
        let mut candidates: Vec<Var> = support;
        candidates.sort_by_key(|&v| std::cmp::Reverse(level_population(&best_mgr, &best_roots, v)));
        candidates.truncate(limits.max_vars);

        for var in candidates {
            let cur_order = best_mgr.order();
            let cur_pos = cur_order
                .iter()
                .position(|&v| v == var)
                // lint:allow(panic) — var was taken from this very order
                .expect("var in order");
            let mut best_pos = cur_pos;
            for pos in 0..cur_order.len() {
                if pos == cur_pos {
                    continue;
                }
                let mut order = cur_order.clone();
                let v = order.remove(cur_pos);
                order.insert(pos, v);
                bds_trace::counter!("bdd.reorder.rebuilds");
                match reorder(&best_mgr, &best_roots, &order) {
                    Ok((m, r)) => {
                        let size = m.count_nodes(&r);
                        let accepted = size < best_size;
                        bds_trace::event!(
                            "reorder.sift_move",
                            var = var.index(),
                            from = cur_pos,
                            to = pos,
                            size = size,
                            best = best_size,
                            accepted = accepted,
                        );
                        if accepted {
                            bds_trace::counter!("bdd.reorder.accepted_moves");
                            best_size = size;
                            best_pos = pos;
                            best_mgr = m;
                            best_roots = r;
                        }
                    }
                    Err(_) => {
                        // Blow-up under this candidate order: skip it.
                        bds_trace::event!(
                            "reorder.sift_move",
                            var = var.index(),
                            from = cur_pos,
                            to = pos,
                            blowup = true,
                            accepted = false,
                        );
                        continue;
                    }
                }
            }
            let _ = best_pos;
        }
        if best_size == improved_before_pass {
            break; // converged
        }
    }
    Ok((best_mgr, best_roots))
}

/// Number of nodes labelled with `var` in the shared graph of `roots`.
fn level_population(m: &Manager, roots: &[Edge], var: Var) -> usize {
    let lvl = m.level_of(var);
    let mut seen = std::collections::HashSet::new();
    let mut count = 0usize;
    let mut stack: Vec<Edge> = roots.iter().map(|e| e.regular()).collect();
    while let Some(e) = stack.pop() {
        if e.is_const() || !seen.insert(e.node()) {
            continue;
        }
        // lint:allow(panic) — guarded: constants are skipped above
        let (v, h, l) = m.node_raw(e).expect("non-const");
        if m.level_of(v) == lvl {
            count += 1;
        }
        stack.push(h.regular());
        stack.push(l.regular());
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic order-sensitive function a1·b1 + a2·b2 + a3·b3.
    fn interleaving_victim(m: &mut Manager) -> (Edge, Vec<Var>) {
        // Deliberately bad order: a1 a2 a3 b1 b2 b3.
        let a: Vec<Var> = (0..3).map(|i| m.new_var(format!("a{i}"))).collect();
        let b: Vec<Var> = (0..3).map(|i| m.new_var(format!("b{i}"))).collect();
        let mut f = Edge::ZERO;
        for i in 0..3 {
            let la = m.literal(a[i], true);
            let lb = m.literal(b[i], true);
            let t = m.and(la, lb).unwrap();
            f = m.or(f, t).unwrap();
        }
        let mut vars = a;
        vars.extend(b);
        (f, vars)
    }

    #[test]
    fn reorder_preserves_function() {
        let mut m = Manager::new();
        let (f, vars) = interleaving_victim(&mut m);
        let order = vec![vars[0], vars[3], vars[1], vars[4], vars[2], vars[5]];
        let (m2, roots) = reorder(&m, &[f], &order).unwrap();
        for bits in 0..64u32 {
            let assign: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(m.eval(f, &assign), m2.eval(roots[0], &assign));
        }
        // Interleaved order shrinks this function: 2^(n+1) vs linear.
        assert!(m2.size(roots[0]) < m.size(f));
    }

    #[test]
    fn sift_finds_interleaved_order() {
        let mut m = Manager::new();
        let (f, _) = interleaving_victim(&mut m);
        let before = m.size(f);
        let (m2, roots) = sift(&m, &[f], SiftLimits::default()).unwrap();
        let after = m2.size(roots[0]);
        assert!(
            after < before,
            "sifting must shrink the interleaving victim"
        );
        assert!(
            after <= 8,
            "interleaved order is linear: 6 decision nodes + terminal"
        );
        for bits in 0..64u32 {
            let assign: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(m.eval(f, &assign), m2.eval(roots[0], &assign));
        }
    }

    #[test]
    fn reorder_rejects_non_permutation() {
        let mut m = Manager::new();
        let vars = m.new_vars(3);
        let bad = vec![vars[0], vars[0], vars[1]];
        assert!(reorder(&m, &[Edge::ONE], &bad).is_err());
        let short = vec![vars[0]];
        assert!(reorder(&m, &[Edge::ONE], &short).is_err());
    }
}

/// Sliding window-3 permutation: for each window of three adjacent
/// levels, tries all 6 permutations (by rebuild) and keeps the best.
/// Cheaper than full sifting and often a good finisher after it —
/// the classic companion pass in Rudell-style reordering packages.
///
/// Returns `(manager, roots)`; like [`sift`], variable identities are
/// preserved.
///
/// # Errors
/// Node-limit errors from the final rebuild (candidate orders that blow
/// up are skipped).
pub fn window3(src: &Manager, roots: &[Edge], limits: SiftLimits) -> Result<(Manager, Vec<Edge>)> {
    let _span = bds_trace::span!("bdd.window3");
    let base_order = src.order();
    if src.count_nodes(roots) > limits.max_nodes || src.var_count() < 3 {
        return reorder(src, roots, &base_order);
    }
    let (mut best_mgr, mut best_roots) = reorder(src, roots, &base_order)?;
    let mut best_size = best_mgr.count_nodes(&best_roots);
    for _pass in 0..limits.passes.max(1) {
        bds_trace::counter!("bdd.reorder.passes");
        let before = best_size;
        let n = best_mgr.var_count();
        for start in 0..n.saturating_sub(2) {
            let cur = best_mgr.order();
            // All permutations of the 3 window slots.
            const PERMS: [[usize; 3]; 6] = [
                [0, 1, 2],
                [0, 2, 1],
                [1, 0, 2],
                [1, 2, 0],
                [2, 0, 1],
                [2, 1, 0],
            ];
            for perm in PERMS.iter().skip(1) {
                let mut order = cur.clone();
                let window = [cur[start], cur[start + 1], cur[start + 2]];
                for (slot, &take) in perm.iter().enumerate() {
                    order[start + slot] = window[take];
                }
                bds_trace::counter!("bdd.reorder.rebuilds");
                if let Ok((m, r)) = reorder(&best_mgr, &best_roots, &order) {
                    let size = m.count_nodes(&r);
                    if size < best_size {
                        bds_trace::counter!("bdd.reorder.accepted_moves");
                        bds_trace::event!(
                            "reorder.window3_accept",
                            start = start,
                            size = size,
                            was = best_size,
                        );
                        best_size = size;
                        best_mgr = m;
                        best_roots = r;
                    }
                }
            }
        }
        if best_size == before {
            break;
        }
    }
    Ok((best_mgr, best_roots))
}

#[cfg(test)]
mod window_tests {
    use super::*;

    #[test]
    fn window3_preserves_function_and_helps_local_disorder() {
        // A function where swapping two adjacent variables helps:
        // f = (a·c) + (b·c) + (a·b·d) with order a, d, b, c — moving d
        // below b/c shrinks the graph.
        let mut m = Manager::new();
        let a = m.new_var("a");
        let d = m.new_var("d");
        let b = m.new_var("b");
        let c = m.new_var("c");
        let (la, lb, lc, ld) = (
            m.literal(a, true),
            m.literal(b, true),
            m.literal(c, true),
            m.literal(d, true),
        );
        let ac = m.and(la, lc).unwrap();
        let bc = m.and(lb, lc).unwrap();
        let ab = m.and(la, lb).unwrap();
        let abd = m.and(ab, ld).unwrap();
        let t = m.or(ac, bc).unwrap();
        let f = m.or(t, abd).unwrap();
        let before = m.size(f);
        let (m2, roots) = window3(&m, &[f], SiftLimits::default()).unwrap();
        assert!(m2.size(roots[0]) <= before);
        for bits in 0..16u32 {
            let assign: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(m.eval(f, &assign), m2.eval(roots[0], &assign));
        }
    }

    #[test]
    fn window3_matches_sift_on_interleaving_victim() {
        let mut m = Manager::new();
        let a: Vec<Var> = (0..3).map(|i| m.new_var(format!("a{i}"))).collect();
        let b: Vec<Var> = (0..3).map(|i| m.new_var(format!("b{i}"))).collect();
        let mut f = Edge::ZERO;
        for i in 0..3 {
            let la = m.literal(a[i], true);
            let lb = m.literal(b[i], true);
            let t = m.and(la, lb).unwrap();
            f = m.or(f, t).unwrap();
        }
        let limits = SiftLimits {
            passes: 4,
            ..SiftLimits::default()
        };
        let (mw, rw) = window3(&m, &[f], limits).unwrap();
        let (ms, rs) = sift(&m, &[f], limits).unwrap();
        // Both must reach the linear-size interleaved form.
        assert!(mw.size(rw[0]) <= 8, "window3 got {}", mw.size(rw[0]));
        assert!(ms.size(rs[0]) <= 8);
    }

    #[test]
    fn window3_tiny_inputs_pass_through() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let la = m.literal(a, true);
        let (m2, r) = window3(&m, &[la], SiftLimits::default()).unwrap();
        assert_eq!(m2.size(r[0]), 2);
    }
}

/// Exact reordering for **small** BDDs: tries every permutation of the
/// support variables (all `n!` of them) and keeps the global optimum.
/// Only sensible for `n ≤ 8`; used as the quality yardstick that the
/// sifting heuristics are measured against.
///
/// # Errors
/// [`crate::BddError::BadVarMap`] when the support exceeds `max_vars`
/// (factorial blow-up guard); node-limit errors from rebuilds.
pub fn exact(src: &Manager, roots: &[Edge], max_vars: usize) -> Result<(Manager, Vec<Edge>)> {
    let support = src.support_of(roots);
    if support.len() > max_vars || support.len() > 8 {
        return Err(crate::BddError::BadVarMap {
            detail: format!(
                "exact reordering over {} variables exceeds the factorial guard",
                support.len()
            ),
        });
    }
    let others: Vec<Var> = src
        .order()
        .into_iter()
        .filter(|v| !support.contains(v))
        .collect();
    let (mut best_mgr, mut best_roots) = reorder(src, roots, &src.order())?;
    let mut best_size = best_mgr.count_nodes(&best_roots);

    // Heap's algorithm over the support permutation.
    let mut perm = support.clone();
    let n = perm.len();
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            let mut order = perm.clone();
            order.extend(others.iter().copied());
            if let Ok((m, r)) = reorder(src, roots, &order) {
                let size = m.count_nodes(&r);
                if size < best_size {
                    best_size = size;
                    best_mgr = m;
                    best_roots = r;
                }
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    Ok((best_mgr, best_roots))
}

#[cfg(test)]
mod exact_tests {
    use super::*;

    #[test]
    fn exact_finds_the_interleaved_optimum() {
        let mut m = Manager::new();
        let a: Vec<Var> = (0..3).map(|i| m.new_var(format!("a{i}"))).collect();
        let b: Vec<Var> = (0..3).map(|i| m.new_var(format!("b{i}"))).collect();
        let mut f = Edge::ZERO;
        for i in 0..3 {
            let la = m.literal(a[i], true);
            let lb = m.literal(b[i], true);
            let t = m.and(la, lb).unwrap();
            f = m.or(f, t).unwrap();
        }
        let (me, re) = exact(&m, &[f], 8).unwrap();
        assert_eq!(
            me.size(re[0]),
            7,
            "global optimum: 6 decision nodes + terminal"
        );
        for bits in 0..64u32 {
            let assign: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(m.eval(f, &assign), me.eval(re[0], &assign));
        }
    }

    /// Sifting must land within 25% of the exact optimum on small
    /// random-ish functions — the quality contract of the heuristic.
    #[test]
    fn sift_is_near_exact_on_small_functions() {
        let mut seed = 0xD1CEu64;
        let mut rnd = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..10 {
            let mut m = Manager::new();
            let vars = m.new_vars(6);
            let lits: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
            let mut f = lits[(rnd() % 6) as usize];
            for _ in 0..8 {
                let l = lits[(rnd() % 6) as usize].complement_if(rnd() & 1 == 1);
                f = match rnd() % 3 {
                    0 => m.and(f, l).unwrap(),
                    1 => m.or(f, l).unwrap(),
                    _ => m.xor(f, l).unwrap(),
                };
            }
            if f.is_const() {
                continue;
            }
            let (me, re) = exact(&m, &[f], 8).unwrap();
            let optimum = me.size(re[0]);
            let limits = SiftLimits {
                passes: 3,
                ..SiftLimits::default()
            };
            let (ms, rs) = sift(&m, &[f], limits).unwrap();
            let heuristic = ms.size(rs[0]);
            assert!(
                heuristic as f64 <= optimum as f64 * 1.25 + 1.0,
                "sift {heuristic} vs exact {optimum}"
            );
        }
    }

    #[test]
    fn exact_guards_against_factorial_blowup() {
        let mut m = Manager::new();
        let vars = m.new_vars(12);
        let lits: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
        let mut f = Edge::ZERO;
        for chunk in lits.chunks(2) {
            let t = m.and(chunk[0], chunk[1]).unwrap();
            f = m.or(f, t).unwrap();
        }
        assert!(
            exact(&m, &[f], 8).is_err(),
            "12-var support must be refused"
        );
    }
}
