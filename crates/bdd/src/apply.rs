//! The ITE operator and derived Boolean connectives.

use crate::canon::IteNorm;
use crate::edge::Edge;
use crate::manager::Manager;
use crate::nid::IteKey;
use crate::stats::miss_depth_bucket;
use crate::Result;

impl Manager {
    /// If-then-else: `ite(f, g, h) = f·g + f̄·h`.
    ///
    /// This is the single primitive all binary connectives reduce to
    /// (Brace–Rudell–Bryant). Results are memoized in the manager's
    /// computed table under a normalized key, so equivalent calls hit the
    /// cache regardless of argument form.
    ///
    /// # Errors
    /// [`crate::BddError::NodeLimit`] if the manager's node limit is hit.
    pub fn ite(&mut self, f: Edge, g: Edge, h: Edge) -> Result<Edge> {
        self.ite_rec(f, g, h, 0)
    }

    /// The memoized ITE recursion, threading the recursion `depth` so
    /// computed-table misses can be bucketed by how deep they happened
    /// (shallow = cold first touch, deep = the cache thrashing inside a
    /// recursion).
    fn ite_rec(&mut self, f: Edge, g: Edge, h: Edge, depth: u32) -> Result<Edge> {
        self.charge(crate::OpClass::Ite)?;
        self.ops.ite_calls += 1;
        if bds_trace::is_enabled()
            && self
                .ops
                .ite_calls
                .is_multiple_of(bds_trace::timeline::SAMPLE_INTERVAL)
        {
            self.sample_timeline();
        }
        // Canonical standard triple (terminal rules, argument
        // substitution, symmetry and complement normalization — see
        // `canon.rs`): structurally equal queries reach the computed
        // table under one bit-identical key.
        let (f, g, h, negate) = match self.canonicalize_ite(f, g, h) {
            IteNorm::Done(r) => {
                self.ops.terminal_hits += 1;
                return Ok(r);
            }
            IteNorm::Triple { f, g, h, negate } => (f, g, h, negate),
        };

        let key = IteKey::pack(f, g, h);
        if let Some(&cached) = self.ite_cache.get(&key) {
            self.ops.cache_hits += 1;
            return Ok(cached.complement_if(negate));
        }
        self.ops.cache_misses += 1;
        self.ops.miss_depth[miss_depth_bucket(depth)] += 1;

        // --- recursion -------------------------------------------------------
        let level = self
            .node_level(f)
            .min(self.node_level(g))
            .min(self.node_level(h));
        let (f1, f0) = self.cofactors_at(f, level);
        let (g1, g0) = self.cofactors_at(g, level);
        let (h1, h0) = self.cofactors_at(h, level);
        let t = self.ite_rec(f1, g1, h1, depth + 1)?;
        let e = self.ite_rec(f0, g0, h0, depth + 1)?;
        let r = self.mk(level, t, e)?;
        self.ite_cache.insert(key, r);
        Ok(r.complement_if(negate))
    }

    /// Pushes one timeline sample of this manager's live gauges. Cold:
    /// only reached every [`bds_trace::timeline::SAMPLE_INTERVAL`] ite
    /// calls, and only with tracing compiled in.
    #[cold]
    fn sample_timeline(&self) {
        let stats = self.table_stats();
        bds_trace::timeline::observe(
            self.ops.ite_calls,
            &bds_trace::timeline::SampleValues {
                arena_nodes: self.nodes.len() as u64,
                arena_bytes: stats.estimated_bytes() as u64,
                unique_entries: stats.unique_entries as u64,
                unique_capacity: stats.unique_capacity as u64,
                computed_entries: stats.computed_entries as u64,
                cache_hits: self.ops.cache_hits,
                cache_misses: self.ops.cache_misses,
            },
        );
    }

    /// Shallow cofactors of `e` with respect to the variable at `level`.
    ///
    /// If `e`'s top level is below `level` the function does not depend on
    /// that variable and both cofactors are `e` itself.
    #[inline]
    pub(crate) fn cofactors_at(&self, e: Edge, level: u32) -> (Edge, Edge) {
        if e.is_const() || self.node_level(e) != level {
            return (e, e);
        }
        let n = &self.nodes[e.node() as usize];
        let c = e.is_complemented();
        (n.high.complement_if(c), n.low.complement_if(c))
    }

    /// Conjunction `f · g`.
    ///
    /// # Errors
    /// [`crate::BddError::NodeLimit`] if the manager's node limit is hit.
    pub fn and(&mut self, f: Edge, g: Edge) -> Result<Edge> {
        self.ite(f, g, Edge::ZERO)
    }

    /// Disjunction `f + g`.
    ///
    /// # Errors
    /// [`crate::BddError::NodeLimit`] if the manager's node limit is hit.
    pub fn or(&mut self, f: Edge, g: Edge) -> Result<Edge> {
        self.ite(f, Edge::ONE, g)
    }

    /// Exclusive or `f ⊕ g`.
    ///
    /// # Errors
    /// [`crate::BddError::NodeLimit`] if the manager's node limit is hit.
    pub fn xor(&mut self, f: Edge, g: Edge) -> Result<Edge> {
        self.ite(f, g.complement(), g)
    }

    /// Equivalence `f ⊙ g` (XNOR).
    ///
    /// # Errors
    /// [`crate::BddError::NodeLimit`] if the manager's node limit is hit.
    pub fn xnor(&mut self, f: Edge, g: Edge) -> Result<Edge> {
        self.ite(f, g, g.complement())
    }

    /// Implication `f → g`.
    ///
    /// # Errors
    /// [`crate::BddError::NodeLimit`] if the manager's node limit is hit.
    pub fn implies(&mut self, f: Edge, g: Edge) -> Result<Edge> {
        self.ite(f, g, Edge::ONE)
    }

    /// Difference `f · ḡ`.
    ///
    /// # Errors
    /// [`crate::BddError::NodeLimit`] if the manager's node limit is hit.
    pub fn and_not(&mut self, f: Edge, g: Edge) -> Result<Edge> {
        self.ite(f, g.complement(), Edge::ZERO)
    }

    /// Returns `true` iff `f ⊆ g` (as ON-sets), i.e. `f · ḡ = 0`.
    ///
    /// # Errors
    /// [`crate::BddError::NodeLimit`] if the manager's node limit is hit.
    pub fn leq(&mut self, f: Edge, g: Edge) -> Result<bool> {
        Ok(self.and_not(f, g)?.is_zero())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Manager;

    fn setup() -> (Manager, Edge, Edge, Edge) {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let b = m.new_var("b");
        let c = m.new_var("c");
        let (la, lb, lc) = (m.literal(a, true), m.literal(b, true), m.literal(c, true));
        (m, la, lb, lc)
    }

    #[test]
    fn connectives_agree_with_truth_tables() {
        let (mut m, a, b, _) = setup();
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let assign = [va, vb, false];
            let and = m.and(a, b).unwrap();
            let or = m.or(a, b).unwrap();
            let xor = m.xor(a, b).unwrap();
            let xnor = m.xnor(a, b).unwrap();
            let imp = m.implies(a, b).unwrap();
            assert_eq!(m.eval(and, &assign), va && vb);
            assert_eq!(m.eval(or, &assign), va || vb);
            assert_eq!(m.eval(xor, &assign), va ^ vb);
            assert_eq!(m.eval(xnor, &assign), va == vb);
            assert_eq!(m.eval(imp, &assign), !va || vb);
        }
    }

    #[test]
    fn de_morgan() {
        let (mut m, a, b, _) = setup();
        let and = m.and(a, b).unwrap();
        let or_compl = m.or(a.complement(), b.complement()).unwrap();
        assert_eq!(and.complement(), or_compl);
    }

    #[test]
    fn xor_is_associative_and_commutative() {
        let (mut m, a, b, c) = setup();
        let ab = m.xor(a, b).unwrap();
        let abc1 = m.xor(ab, c).unwrap();
        let bc = m.xor(b, c).unwrap();
        let abc2 = m.xor(a, bc).unwrap();
        assert_eq!(abc1, abc2);
        let ba = m.xor(b, a).unwrap();
        assert_eq!(ab, ba);
    }

    #[test]
    fn ite_shannon_expansion() {
        let (mut m, a, b, c) = setup();
        let f = m.ite(a, b, c).unwrap();
        assert!(m.eval(f, &[true, true, false]));
        assert!(!m.eval(f, &[true, false, true]));
        assert!(!m.eval(f, &[false, true, false]));
        assert!(m.eval(f, &[false, false, true]));
    }

    #[test]
    fn leq_detects_containment() {
        let (mut m, a, b, _) = setup();
        let ab = m.and(a, b).unwrap();
        let aorb = m.or(a, b).unwrap();
        assert!(m.leq(ab, a).unwrap());
        assert!(m.leq(a, aorb).unwrap());
        assert!(!m.leq(aorb, ab).unwrap());
    }

    #[test]
    fn complement_edges_shared_structure() {
        // f and !f must share every node (complement edges!).
        let (mut m, a, b, c) = setup();
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        let before = m.arena_size();
        let _nf = f.complement();
        assert_eq!(m.arena_size(), before);
    }

    #[test]
    fn cache_hit_on_symmetric_calls() {
        let (mut m, a, b, _) = setup();
        let x = m.and(a, b).unwrap();
        let y = m.and(b, a).unwrap();
        assert_eq!(x, y);
    }
}
