//! Minato–Morreale irredundant sum-of-products extraction.

use std::collections::HashMap;

use crate::cube::Cube;
use crate::edge::Edge;
use crate::manager::Manager;
use crate::Result;

impl Manager {
    /// Computes an irredundant sum-of-products cover `c` of the incompletely
    /// specified function bounded by `lower ⊆ c ⊆ upper` (Minato–Morreale
    /// ISOP). Returns the cover's cubes together with the BDD of the cover.
    ///
    /// With `lower == upper` this is an ISOP of a completely specified
    /// function — how factoring-tree leaves and BLIF node functions are
    /// emitted in the BDS flow.
    ///
    /// # Errors
    /// [`crate::BddError::NodeLimit`] if the node limit is hit.
    ///
    /// # Panics
    /// Debug-asserts `lower ⊆ upper`; in release an inconsistent pair
    /// yields an unspecified (but well-formed) cover.
    pub fn isop(&mut self, lower: Edge, upper: Edge) -> Result<(Vec<Cube>, Edge)> {
        debug_assert!(
            self.leq(lower, upper).unwrap_or(true),
            "isop requires lower ⊆ upper"
        );
        let mut memo = HashMap::new();
        self.isop_rec(lower, upper, &mut memo)
    }

    fn isop_rec(
        &mut self,
        l: Edge,
        u: Edge,
        memo: &mut HashMap<(Edge, Edge), (Vec<Cube>, Edge)>,
    ) -> Result<(Vec<Cube>, Edge)> {
        if l.is_zero() {
            return Ok((Vec::new(), Edge::ZERO));
        }
        if u.is_one() {
            return Ok((vec![Cube::top()], Edge::ONE));
        }
        if let Some(r) = memo.get(&(l, u)) {
            return Ok(r.clone());
        }
        let level = self.node_level(l).min(self.node_level(u));
        let var = self.var_at(level);
        let (l1, l0) = self.cofactors_at(l, level);
        let (u1, u0) = self.cofactors_at(u, level);

        // Cubes that must contain the negative literal of `var`:
        // cover the part of l0 not coverable under u1.
        let l0_only = self.and_not(l0, u1)?;
        let (c0, b0) = self.isop_rec(l0_only, u0, memo)?;
        // Cubes that must contain the positive literal.
        let l1_only = self.and_not(l1, u0)?;
        let (c1, b1) = self.isop_rec(l1_only, u1, memo)?;
        // What remains to be covered, var-independently.
        let l0_rest = self.and_not(l0, b0)?;
        let l1_rest = self.and_not(l1, b1)?;
        let l_rest = self.or(l0_rest, l1_rest)?;
        let u_common = self.and(u0, u1)?;
        let (cd, bd) = self.isop_rec(l_rest, u_common, memo)?;

        let mut cubes = Vec::with_capacity(c0.len() + c1.len() + cd.len());
        cubes.extend(c0.iter().map(|c| c.with_lit(var, false)));
        cubes.extend(c1.iter().map(|c| c.with_lit(var, true)));
        cubes.extend(cd.iter().cloned());
        let lit = self.literal_level(level)?;
        let vb0 = self.ite(lit, Edge::ZERO, b0)?;
        let vb1 = self.ite(lit, b1, Edge::ZERO)?;
        let mut cover = self.or(vb0, vb1)?;
        cover = self.or(cover, bd)?;
        let r = (cubes, cover);
        memo.insert((l, u), r.clone());
        Ok(r)
    }

    /// The positive literal of the variable at `level` (helper that avoids
    /// borrowing issues in ISOP). Fallible so a budget or injected fault
    /// tripping mid-extraction surfaces as an `Err`, not a panic.
    fn literal_level(&mut self, level: u32) -> Result<Edge> {
        let var = self.var_at(level);
        self.literal_checked(var, true)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Edge, Manager};

    /// Checks isop(f, f) covers exactly f for a pool of functions.
    #[test]
    fn isop_exactly_covers() {
        let mut m = Manager::new();
        let vars = m.new_vars(4);
        let lits: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
        let ab = m.and(lits[0], lits[1]).unwrap();
        let cd = m.and(lits[2], lits[3]).unwrap();
        let f1 = m.or(ab, cd).unwrap();
        let f2 = m.xor(lits[0], lits[1]).unwrap();
        let x = m.xor(f2, lits[2]).unwrap();
        for f in [f1, f2, x, f1.complement(), Edge::ONE, Edge::ZERO] {
            let (cubes, cover) = m.isop(f, f).unwrap();
            assert_eq!(cover, f, "cover must equal the function exactly");
            let rebuilt = m.sum_of_cubes(&cubes).unwrap();
            assert_eq!(rebuilt, f, "cube list must rebuild the function");
        }
    }

    #[test]
    fn isop_uses_dont_cares() {
        let mut m = Manager::new();
        let vars = m.new_vars(2);
        let la = m.literal(vars[0], true);
        let lb = m.literal(vars[1], true);
        let ab = m.and(la, lb).unwrap();
        let aorb = m.or(la, lb).unwrap();
        // Interval [a·b, a+b]: a single-literal cover exists.
        let (cubes, cover) = m.isop(ab, aorb).unwrap();
        assert!(m.leq(ab, cover).unwrap());
        assert!(m.leq(cover, aorb).unwrap());
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0].len(), 1);
    }

    #[test]
    fn isop_cube_count_is_irredundant_for_xor() {
        let mut m = Manager::new();
        let vars = m.new_vars(2);
        let la = m.literal(vars[0], true);
        let lb = m.literal(vars[1], true);
        let x = m.xor(la, lb).unwrap();
        let (cubes, _) = m.isop(x, x).unwrap();
        assert_eq!(cubes.len(), 2); // a·b̄ + ā·b
    }
}
