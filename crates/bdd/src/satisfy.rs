//! Satisfying-assignment extraction: witnesses, shortest cubes, and
//! minterm iteration.

use crate::cube::Cube;
use crate::edge::{Edge, Var};
use crate::manager::Manager;

impl Manager {
    /// Returns one satisfying assignment of `e` as a cube over its
    /// decision path (variables not mentioned are don't-cares), or
    /// `None` for the constant-false function.
    ///
    /// The witness follows the lexicographically-first 1-path, preferring
    /// the else-branch (so low-index minterm assignments come out first
    /// for typical orders).
    pub fn satisfy_one(&self, e: Edge) -> Option<Cube> {
        if e.is_zero() {
            return None;
        }
        let mut lits: Vec<(Var, bool)> = Vec::new();
        let mut cur = e;
        while !cur.is_const() {
            // lint:allow(panic) — guarded: loop runs only while cur is non-constant
            let (var, t, el) = self.node(cur).expect("non-const");
            // Prefer the branch that leads to 1; try else first.
            if !el.is_zero() {
                lits.push((var, false));
                cur = el;
            } else {
                lits.push((var, true));
                cur = t;
            }
        }
        debug_assert!(cur.is_one());
        Cube::from_lits(lits)
    }

    /// Returns the satisfying cube with the fewest literals among the
    /// BDD's **1-paths** (a shortest path to the 1-terminal), or `None`
    /// for constant false. Note that a path records every decision
    /// variable along it, so this is a large implicant of the function
    /// but not necessarily a prime.
    pub fn shortest_cube(&self, e: Edge) -> Option<Cube> {
        if e.is_zero() {
            return None;
        }
        // Dynamic programming on path length to 1.
        fn rec(
            m: &Manager,
            e: Edge,
            memo: &mut std::collections::HashMap<Edge, Option<Vec<(Var, bool)>>>,
        ) -> Option<Vec<(Var, bool)>> {
            if e.is_one() {
                return Some(Vec::new());
            }
            if e.is_zero() {
                return None;
            }
            if let Some(r) = memo.get(&e) {
                return r.clone();
            }
            // lint:allow(panic) — guarded: e is non-constant here
            let (var, t, el) = m.node(e).expect("non-const");
            let a = rec(m, t, memo).map(|mut v| {
                v.push((var, true));
                v
            });
            let b = rec(m, el, memo).map(|mut v| {
                v.push((var, false));
                v
            });
            let best = match (a, b) {
                (Some(x), Some(y)) => Some(if x.len() <= y.len() { x } else { y }),
                (x, y) => x.or(y),
            };
            memo.insert(e, best.clone());
            best
        }
        let mut memo = std::collections::HashMap::new();
        let lits = rec(self, e, &mut memo)?;
        Cube::from_lits(lits)
    }

    /// Iterates all satisfying cubes (the 1-paths) of `e`, for small
    /// functions. The cubes are disjoint and cover exactly the ON-set.
    pub fn one_paths(&self, e: Edge) -> Vec<Cube> {
        let mut out = Vec::new();
        let mut prefix: Vec<(Var, bool)> = Vec::new();
        self.one_paths_rec(e, &mut prefix, &mut out);
        out
    }

    fn one_paths_rec(&self, e: Edge, prefix: &mut Vec<(Var, bool)>, out: &mut Vec<Cube>) {
        if e.is_one() {
            // lint:allow(panic) — a BDD path never repeats a variable
            out.push(Cube::from_lits(prefix.clone()).expect("path literals are consistent"));
            return;
        }
        if e.is_zero() {
            return;
        }
        // lint:allow(panic) — guarded: constants are handled above
        let (var, t, el) = self.node(e).expect("non-const");
        prefix.push((var, true));
        self.one_paths_rec(t, prefix, out);
        prefix.pop();
        prefix.push((var, false));
        self.one_paths_rec(el, prefix, out);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfy_one_is_satisfying() {
        let mut m = Manager::new();
        let vars = m.new_vars(4);
        let lits: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
        let ab = m.and(lits[0], lits[1]).unwrap();
        let cd = m.and(lits[2].complement(), lits[3]).unwrap();
        let f = m.or(ab, cd).unwrap();
        let cube = m.satisfy_one(f).expect("satisfiable");
        // Extend the cube to a full assignment (don't-cares to false).
        let mut assign = vec![false; 4];
        for &(v, p) in cube.literals() {
            assign[v.index()] = p;
        }
        assert!(m.eval(f, &assign), "witness must satisfy the function");
        assert!(m.satisfy_one(Edge::ZERO).is_none());
        assert!(m.satisfy_one(Edge::ONE).expect("const true").is_empty());
    }

    #[test]
    fn shortest_cube_is_minimal() {
        let mut m = Manager::new();
        let vars = m.new_vars(4);
        let lits: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
        // f = a·b·c + d: the shortest 1-path is ā·d (paths record every
        // decision on the way; a is decided at the root).
        let abc1 = m.and(lits[0], lits[1]).unwrap();
        let abc = m.and(abc1, lits[2]).unwrap();
        let f = m.or(abc, lits[3]).unwrap();
        let cube = m.shortest_cube(f).expect("satisfiable");
        assert_eq!(cube.len(), 2, "shortest 1-path is ā·d: {cube}");
        // It must satisfy f when extended arbitrarily.
        let mut assign = vec![false; 4];
        for &(v, p) in cube.literals() {
            assign[v.index()] = p;
        }
        assert!(m.eval(f, &assign));
        // And it must be no longer than any other 1-path.
        let all = m.one_paths(f);
        let min = all.iter().map(Cube::len).min().unwrap();
        assert_eq!(cube.len(), min);
    }

    #[test]
    fn one_paths_cover_exactly() {
        let mut m = Manager::new();
        let vars = m.new_vars(3);
        let lits: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
        let x = m.xor(lits[0], lits[1]).unwrap();
        let f = m.or(x, lits[2]).unwrap();
        let cubes = m.one_paths(f);
        // Disjoint cover: per assignment exactly ON(f) matches ≥1 cube.
        for bits in 0..8u32 {
            let assign: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let covered = cubes.iter().filter(|c| c.eval(&assign)).count();
            if m.eval(f, &assign) {
                assert_eq!(covered, 1, "1-paths are disjoint and exhaustive");
            } else {
                assert_eq!(covered, 0);
            }
        }
    }
}
