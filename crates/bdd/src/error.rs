//! Error type for BDD operations.

use std::error::Error;
use std::fmt;

/// The class of manager operation that consumed the effort tick which
/// tripped a budget (see [`BddError::BudgetExceeded`]).
///
/// Effort ticks are *deterministic*: one tick per ITE recursion step and
/// one per fresh unique-table insertion, never wall clock, so a budget
/// trips at the same tick on every run regardless of thread count.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum OpClass {
    /// A step of the memoized ITE recursion.
    Ite,
    /// A fresh node insertion into the unique table.
    UniqueInsert,
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpClass::Ite => write!(f, "ite"),
            OpClass::UniqueInsert => write!(f, "unique-insert"),
        }
    }
}

/// Errors reported by BDD operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BddError {
    /// The manager's configured node limit was exceeded while building a
    /// result. Callers (e.g. `eliminate` in `bds-network`) use this as a
    /// back-pressure signal to reject an over-eager collapse.
    NodeLimit {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// A variable handle did not belong to the manager it was used with.
    UnknownVar {
        /// Raw index of the offending variable.
        var: usize,
        /// Number of variables in the manager.
        var_count: usize,
    },
    /// A transfer/reorder variable map was incomplete or inconsistent.
    BadVarMap {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A structural invariant audit found the manager corrupted (see
    /// [`crate::Manager::check_invariants`]). Always a bug in this crate,
    /// never a usage error.
    InvariantViolation {
        /// Description of the violated invariant.
        detail: String,
    },
    /// The manager's deterministic effort budget was exhausted (see
    /// [`crate::Manager::set_effort_limit`]). Like [`BddError::NodeLimit`]
    /// this is a back-pressure signal, not a failure: callers retreat to a
    /// cheaper strategy (the degradation ladder in `bds-core`).
    BudgetExceeded {
        /// Effort ticks spent when the budget tripped.
        spent: u64,
        /// The configured effort limit.
        limit: u64,
        /// The operation class whose tick tripped the budget.
        op: OpClass,
    },
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::NodeLimit { limit } => {
                write!(f, "bdd node limit of {limit} exceeded")
            }
            BddError::UnknownVar { var, var_count } => {
                write!(
                    f,
                    "variable v{var} is not one of the {var_count} manager variables"
                )
            }
            BddError::BadVarMap { detail } => write!(f, "invalid variable map: {detail}"),
            BddError::InvariantViolation { detail } => {
                write!(f, "bdd invariant violated: {detail}")
            }
            BddError::BudgetExceeded { spent, limit, op } => {
                write!(
                    f,
                    "bdd effort budget of {limit} ticks exceeded at {spent} ({op} step)"
                )
            }
        }
    }
}

impl Error for BddError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = BddError::NodeLimit { limit: 10 };
        assert_eq!(e.to_string(), "bdd node limit of 10 exceeded");
        let e = BddError::UnknownVar {
            var: 3,
            var_count: 2,
        };
        assert!(e.to_string().contains("v3"));
    }

    #[test]
    fn budget_display_names_the_op_class() {
        let e = BddError::BudgetExceeded {
            spent: 101,
            limit: 100,
            op: OpClass::Ite,
        };
        assert_eq!(
            e.to_string(),
            "bdd effort budget of 100 ticks exceeded at 101 (ite step)"
        );
        let e = BddError::BudgetExceeded {
            spent: 7,
            limit: 5,
            op: OpClass::UniqueInsert,
        };
        assert!(e.to_string().contains("unique-insert"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BddError>();
    }
}
