//! Error type for BDD operations.

use std::error::Error;
use std::fmt;

/// Errors reported by BDD operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BddError {
    /// The manager's configured node limit was exceeded while building a
    /// result. Callers (e.g. `eliminate` in `bds-network`) use this as a
    /// back-pressure signal to reject an over-eager collapse.
    NodeLimit {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// A variable handle did not belong to the manager it was used with.
    UnknownVar {
        /// Raw index of the offending variable.
        var: usize,
        /// Number of variables in the manager.
        var_count: usize,
    },
    /// A transfer/reorder variable map was incomplete or inconsistent.
    BadVarMap {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// A structural invariant audit found the manager corrupted (see
    /// [`crate::Manager::check_invariants`]). Always a bug in this crate,
    /// never a usage error.
    InvariantViolation {
        /// Description of the violated invariant.
        detail: String,
    },
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::NodeLimit { limit } => {
                write!(f, "bdd node limit of {limit} exceeded")
            }
            BddError::UnknownVar { var, var_count } => {
                write!(
                    f,
                    "variable v{var} is not one of the {var_count} manager variables"
                )
            }
            BddError::BadVarMap { detail } => write!(f, "invalid variable map: {detail}"),
            BddError::InvariantViolation { detail } => {
                write!(f, "bdd invariant violated: {detail}")
            }
        }
    }
}

impl Error for BddError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = BddError::NodeLimit { limit: 10 };
        assert_eq!(e.to_string(), "bdd node limit of 10 exceeded");
        let e = BddError::UnknownVar {
            var: 3,
            var_count: 2,
        };
        assert!(e.to_string().contains("v3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BddError>();
    }
}
