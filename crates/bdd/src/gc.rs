//! Root-refcounted garbage collection for the node arena.
//!
//! Historically this package had no collector at all: the BDS answer to
//! manager pollution is rebuilding into a fresh manager ("BDD mapping",
//! §IV-B), and short-lived local BDDs mostly kept arenas small. But
//! long build phases — cube-by-cube SOP construction, global collapses
//! — strand large volumes of dead intermediate nodes in the arena, and
//! everything that walks the arena afterwards (invariant audits, level
//! profiles, the memory model, the unique table's load factor) drags
//! them along.
//!
//! The protocol:
//!
//! 1. callers pin the functions they hold with [`Manager::add_root`] /
//!    [`Manager::release_root`] — a per-node reference count;
//! 2. [`Manager::collect_garbage`] marks everything reachable from the
//!    root registry (plus any loose handles passed in), then
//!    **compacts** the arena in stable order: live nodes keep their
//!    relative order, so the collection is a pure function of the
//!    reachable graph — deterministic at any thread count;
//! 3. the unique table is rebuilt from the surviving arena, computed-
//!    table entries whose operands or result died are dropped and the
//!    rest are remapped, and the root registry is remapped in place.
//!
//! Compaction renumbers nodes, so **every [`Edge`] not covered by the
//! root registry or the `handles` argument is invalidated** by a
//! collection. The flow runs collections only at phase boundaries where
//! it can enumerate its live handles exactly.
//!
//! Collection charges no effort ticks: budgets, armed faults and the
//! deterministic profiler see an identical tick stream whether or not a
//! GC ran in between.

use crate::edge::Edge;
use crate::hash::FastMap;
use crate::manager::{Manager, Node};
use crate::nid::UniqueKey;

/// What one [`Manager::collect_garbage`] call did.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Decision nodes that survived (the terminal is not counted).
    pub live: usize,
    /// Dead decision nodes reclaimed by this collection.
    pub collected: usize,
    /// Computed-table entries dropped because an operand or the result
    /// referenced a reclaimed node.
    pub cache_dropped: usize,
}

impl Manager {
    /// Pins the node referenced by `e` (and, transitively at collection
    /// time, everything reachable from it). Each `add_root` must be
    /// balanced by one [`Manager::release_root`]. Constant edges are
    /// accepted and ignored — the terminal is always live.
    pub fn add_root(&mut self, e: Edge) {
        if !e.is_const() {
            *self.roots.entry(e.node()).or_insert(0) += 1;
        }
    }

    /// Releases one pin on the node referenced by `e`. Releasing an
    /// edge that was never rooted (or already fully released) is a
    /// no-op: the registry only ever under-protects on misuse, and the
    /// invariant auditor checks registry coherence separately.
    pub fn release_root(&mut self, e: Edge) {
        if e.is_const() {
            return;
        }
        if let Some(count) = self.roots.get_mut(&e.node()) {
            *count -= 1;
            if *count == 0 {
                self.roots.remove(&e.node());
            }
        }
    }

    /// Number of distinct nodes currently pinned in the root registry.
    #[must_use]
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Collects every node unreachable from the root registry and from
    /// `handles`, compacting the arena in stable order. The edges in
    /// `handles` are remapped in place so the caller's functions stay
    /// valid; any other outstanding edge is invalidated (see the
    /// `gc.rs` module docs).
    ///
    /// Deterministic: the surviving arena, the rebuilt unique table and
    /// the retained computed-table entries are pure functions of the
    /// reachable graph.
    pub fn collect_garbage(&mut self, handles: &mut [Edge]) -> GcStats {
        let n = self.nodes.len();

        // --- mark -------------------------------------------------------
        let mut live = vec![false; n];
        live[0] = true; // terminal
        let mut stack: Vec<u32> = Vec::with_capacity(self.roots.len() + handles.len());
        // Mark order is irrelevant (set union); hash iteration here
        // cannot leak into any output.
        stack.extend(self.roots.keys().copied());
        stack.extend(handles.iter().filter(|e| !e.is_const()).map(|e| e.node()));
        while let Some(idx) = stack.pop() {
            if std::mem::replace(&mut live[idx as usize], true) {
                continue;
            }
            let node = &self.nodes[idx as usize];
            for child in [node.high, node.low] {
                if !child.is_const() && !live[child.node() as usize] {
                    stack.push(child.node());
                }
            }
        }

        // --- compact (stable order) -------------------------------------
        let mut remap = vec![u32::MAX; n];
        let mut next = 0u32;
        for (idx, &alive) in live.iter().enumerate() {
            if alive {
                remap[idx] = next;
                next += 1;
            }
        }
        let live_total = next as usize;
        if live_total == n {
            // Nothing to reclaim; leave the tables untouched.
            return GcStats {
                live: n - 1,
                collected: 0,
                cache_dropped: 0,
            };
        }
        let remap_edge =
            |e: Edge| -> Edge { Edge::new(remap[e.node() as usize], e.is_complemented()) };
        let mut nodes = Vec::with_capacity(live_total);
        for (idx, node) in self.nodes.iter().enumerate() {
            if live[idx] {
                // Children always precede parents in the arena, so both
                // remap slots are already assigned.
                nodes.push(Node {
                    level: node.level,
                    high: remap_edge(node.high),
                    low: remap_edge(node.low),
                });
            }
        }
        self.nodes = nodes;

        // --- rebuild the unique table from the survivors -----------------
        let mut unique = FastMap::default();
        unique.reserve(live_total.saturating_sub(1));
        for (idx, node) in self.nodes.iter().enumerate().skip(1) {
            unique.insert(UniqueKey::pack(node.level, node.high, node.low), idx as u32);
        }
        self.unique = unique;

        // --- remap the computed table, dropping dead entries -------------
        // Entry order never matters for a hash map's contents, and the
        // retained set is a pure function of the live set — hash
        // iteration here cannot leak into any output either.
        let old_cache = std::mem::take(&mut self.ite_cache);
        let mut dropped = 0usize;
        self.ite_cache.reserve(old_cache.len());
        for (key, result) in old_cache {
            let (f, g, h) = key.unpack();
            if [f, g, h, result].iter().all(|e| live[e.node() as usize]) {
                self.ite_cache.insert(
                    crate::nid::IteKey::pack(remap_edge(f), remap_edge(g), remap_edge(h)),
                    remap_edge(result),
                );
            } else {
                dropped += 1;
            }
        }

        // --- remap the root registry and caller handles ------------------
        let old_roots = std::mem::take(&mut self.roots);
        self.roots.reserve(old_roots.len());
        for (idx, count) in old_roots {
            self.roots.insert(remap[idx as usize], count);
        }
        for e in handles.iter_mut() {
            if !e.is_const() {
                *e = remap_edge(*e);
            }
        }

        let stats = GcStats {
            live: live_total - 1,
            collected: n - live_total,
            cache_dropped: dropped,
        };
        bds_trace::counter!("bdd.gc.runs");
        bds_trace::counter_add!("bdd.gc.collected", stats.collected as u64);
        bds_trace::counter_add!("bdd.gc.cache_dropped", stats.cache_dropped as u64);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds `a·b ⊕ c` plus some stranded intermediates and returns
    /// the root.
    fn build(m: &mut Manager) -> Edge {
        let vars = m.new_vars(4);
        let la = m.literal(vars[0], true);
        let lb = m.literal(vars[1], true);
        let lc = m.literal(vars[2], true);
        let ld = m.literal(vars[3], true);
        let ab = m.and(la, lb).unwrap();
        let f = m.xor(ab, lc).unwrap();
        // Stranded garbage: an unrelated conjunction chain.
        let g1 = m.and(lc, ld).unwrap();
        let _g2 = m.or(g1, la).unwrap();
        f
    }

    fn truth_table(m: &Manager, e: Edge, vars: usize) -> Vec<bool> {
        (0..1usize << vars)
            .map(|bits| {
                let assign: Vec<bool> = (0..vars).map(|i| bits >> i & 1 == 1).collect();
                m.eval(e, &assign)
            })
            .collect()
    }

    #[test]
    fn collect_preserves_rooted_functions_exactly() {
        let mut m = Manager::new();
        let f = build(&mut m);
        let before = truth_table(&m, f, 4);
        let dead_before = m.dead_node_count(&[f]);
        assert!(dead_before > 0, "test needs garbage to collect");

        m.add_root(f);
        let mut handles = [f];
        let stats = m.collect_garbage(&mut handles);
        let f = handles[0];
        assert_eq!(stats.collected, dead_before);
        assert_eq!(stats.live + 1, m.arena_size());
        assert_eq!(truth_table(&m, f, 4), before);
        assert_eq!(m.dead_node_count(&[f]), 0, "census must drop to zero");
        m.check_invariants().unwrap();
    }

    #[test]
    fn census_decreases_monotonically_across_collects() {
        let mut m = Manager::new();
        let f = build(&mut m);
        let mut handles = [f];
        let d0 = m.dead_node_count(&handles);
        m.collect_garbage(&mut handles);
        let d1 = m.dead_node_count(&handles);
        assert!(d1 <= d0);
        m.collect_garbage(&mut handles);
        let d2 = m.dead_node_count(&handles);
        assert!(d2 <= d1);
        assert_eq!(d2, 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn registry_pins_without_explicit_handles() {
        let mut m = Manager::new();
        let f = build(&mut m);
        let tt = truth_table(&m, f, 4);
        m.add_root(f);
        let stats = m.collect_garbage(&mut []);
        assert!(stats.collected > 0);
        // The registry was remapped; the rooted function survives under
        // its new id, which the registry tracks.
        assert_eq!(m.root_count(), 1);
        let &idx = m.roots.keys().next().unwrap();
        let rooted = Edge::new(idx, f.is_complemented());
        assert_eq!(truth_table(&m, rooted, 4), tt);
        m.check_invariants().unwrap();
    }

    #[test]
    fn refcounts_balance() {
        let mut m = Manager::new();
        let f = build(&mut m);
        m.add_root(f);
        m.add_root(f);
        assert_eq!(m.root_count(), 1);
        m.release_root(f);
        assert_eq!(m.root_count(), 1, "still pinned once");
        m.release_root(f);
        assert_eq!(m.root_count(), 0);
        // Releasing again is a documented no-op.
        m.release_root(f);
        assert_eq!(m.root_count(), 0);
        // Constants never enter the registry.
        m.add_root(Edge::ONE);
        assert_eq!(m.root_count(), 0);
    }

    #[test]
    fn unrooted_arena_collapses_to_terminal() {
        let mut m = Manager::new();
        let _ = build(&mut m);
        let stats = m.collect_garbage(&mut []);
        assert_eq!(m.arena_size(), 1);
        assert_eq!(stats.live, 0);
        assert!(m.table_stats().computed_entries == 0);
        m.check_invariants().unwrap();
        // The manager stays fully usable: literals rebuild on demand.
        let la = m.literal(crate::Var::from_index(0), true);
        assert!(m.eval(la, &[true, false, false, false]));
    }

    #[test]
    fn surviving_cache_entries_still_hit() {
        let mut m = Manager::new();
        let vars = m.new_vars(3);
        let la = m.literal(vars[0], true);
        let lb = m.literal(vars[1], true);
        let lc = m.literal(vars[2], true);
        let ab = m.xor(la, lb).unwrap();
        let f = m.xor(ab, lc).unwrap();
        let mut handles = [f, ab, la, lb, lc];
        m.collect_garbage(&mut handles);
        m.check_invariants().unwrap();
        let [f2, ab2, la2, lb2, lc2] = handles;
        // Everything was live: the same queries must reproduce the same
        // (remapped) results, partly straight from the retained cache.
        let hits_before = m.op_stats().cache_hits;
        let ab3 = m.xor(la2, lb2).unwrap();
        let f3 = m.xor(ab3, lc2).unwrap();
        assert_eq!(ab3, ab2);
        assert_eq!(f3, f2);
        assert!(m.op_stats().cache_hits > hits_before);
    }

    #[test]
    fn gc_charges_no_effort_ticks() {
        let mut m = Manager::new();
        let f = build(&mut m);
        let spent = m.effort_spent();
        let mut handles = [f];
        m.collect_garbage(&mut handles);
        assert_eq!(m.effort_spent(), spent);
    }
}
