//! Deterministic effort budgets and fault injection for the manager.
//!
//! A budget is counted in *effort ticks*: one tick per ITE recursion step
//! ([`OpClass::Ite`]) and one per fresh unique-table insertion
//! ([`OpClass::UniqueInsert`]). Ticks are a pure function of the work the
//! manager performs — never wall clock, never thread scheduling — so a
//! budget trips at exactly the same tick on every run at any `jobs` count,
//! preserving the byte-identical determinism contract of the flow layer.
//!
//! The same tick counter doubles as the trigger clock for *fault
//! injection*: [`Manager::arm_fault`] plants a [`Fault`] that fires once
//! when the spent-tick counter reaches an absolute trigger tick. The chaos
//! suite in `bds-prop`/`tests/chaos_flow.rs` uses this to provoke budget
//! exhaustion, allocation failure and worker panics at reproducible
//! points deep inside a synthesis flow.

use crate::error::{BddError, OpClass};
use crate::manager::Manager;
use crate::Result;

/// A fault that can be armed on a [`Manager`] to fire at a chosen effort
/// tick (see [`Manager::arm_fault`]). Each fault fires at most once, then
/// disarms itself.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Report the effort budget as exhausted
    /// ([`BddError::BudgetExceeded`]), regardless of the configured limit.
    Budget,
    /// Simulate a unique-table allocation failure
    /// ([`BddError::NodeLimit`] at the current arena size).
    Alloc,
    /// Panic, as a worker thread hitting an unexpected bug would. The
    /// panic message names the trigger tick so it is deterministic.
    Panic,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Budget => write!(f, "budget-exhausted"),
            Fault::Alloc => write!(f, "alloc-failure"),
            Fault::Panic => write!(f, "worker-panic"),
        }
    }
}

impl Manager {
    /// Effort ticks consumed so far (including any preload from
    /// [`Manager::seed_effort`]).
    pub fn effort_spent(&self) -> u64 {
        self.effort_spent
    }

    /// The configured effort ceiling (`u64::MAX` when unbudgeted).
    pub fn effort_limit(&self) -> u64 {
        self.effort_limit
    }

    /// Budgets the manager: once more than `limit` effort ticks have been
    /// spent, fallible operations return [`BddError::BudgetExceeded`].
    ///
    /// Like the node limit this is back-pressure, not a hard stop: the
    /// manager stays usable and the caller decides how to retreat.
    pub fn set_effort_limit(&mut self, limit: u64) {
        self.effort_limit = limit;
    }

    /// Preloads the spent-tick counter with effort charged to *earlier*
    /// managers of the same logical task, so a budget spanning several
    /// phases (build, then reorder, then decompose — each with its own
    /// manager) trips on the cumulative count and errors report cumulative
    /// numbers.
    pub fn seed_effort(&mut self, spent: u64) {
        self.effort_spent = spent;
    }

    /// Arms `fault` to fire once the spent-tick counter reaches the
    /// absolute tick `at_tick`. Re-arming replaces any pending fault;
    /// a fault fires at most once, then disarms.
    pub fn arm_fault(&mut self, fault: Fault, at_tick: u64) {
        self.armed_fault = Some((fault, at_tick));
    }

    /// Charges one effort tick of class `op`, firing any armed fault whose
    /// trigger tick has been reached and enforcing the budget.
    ///
    /// The tick counter doubles as the sampling clock of the
    /// deterministic profiler: every `PROFILE_INTERVAL` ticks one sample
    /// attributes the current open span path to `op`. Effort is a pure
    /// function of the work performed, so the samples land at identical
    /// ticks on every run at any `jobs` count.
    pub(crate) fn charge(&mut self, op: OpClass) -> Result<()> {
        self.effort_spent += 1;
        if bds_trace::is_enabled()
            && self
                .effort_spent
                .is_multiple_of(bds_trace::profile::PROFILE_INTERVAL)
        {
            sample_profile(op);
        }
        if self.effort_limit == u64::MAX && self.armed_fault.is_none() {
            return Ok(()); // fast path: unbudgeted, nothing armed
        }
        if let Some((fault, at_tick)) = self.armed_fault {
            if self.effort_spent >= at_tick {
                self.armed_fault = None;
                match fault {
                    Fault::Budget => {
                        return Err(BddError::BudgetExceeded {
                            spent: self.effort_spent,
                            limit: self.effort_limit,
                            op,
                        });
                    }
                    Fault::Alloc => {
                        return Err(BddError::NodeLimit {
                            limit: self.nodes.len(),
                        });
                    }
                    Fault::Panic => {
                        // lint:allow(panic) — deterministic fault injection for the chaos suite
                        panic!("injected fault: worker panic at effort tick {at_tick}");
                    }
                }
            }
        }
        if self.effort_spent > self.effort_limit {
            return Err(BddError::BudgetExceeded {
                spent: self.effort_spent,
                limit: self.effort_limit,
                op,
            });
        }
        Ok(())
    }
}

/// Records one profiler sample for `op`. Out-of-line and cold: the
/// interval check above is the only cost `charge` pays per tick.
#[cold]
fn sample_profile(op: OpClass) {
    bds_trace::profile::observe(match op {
        OpClass::Ite => "ite",
        OpClass::UniqueInsert => "unique-insert",
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Edge;

    fn xor_chain(m: &mut Manager, n: usize) -> Result<Edge> {
        let vars = m.new_vars(n);
        let mut acc = m.literal_checked(vars[0], true)?;
        for &v in &vars[1..] {
            let lit = m.literal_checked(v, true)?;
            acc = m.xor(acc, lit)?;
        }
        Ok(acc)
    }

    #[test]
    fn unbudgeted_manager_never_trips() {
        let mut m = Manager::new();
        assert_eq!(m.effort_limit(), u64::MAX);
        xor_chain(&mut m, 8).unwrap();
        assert!(m.effort_spent() > 0);
    }

    #[test]
    fn budget_trips_with_cumulative_numbers() {
        let mut m = Manager::new();
        m.set_effort_limit(10);
        let err = xor_chain(&mut m, 16).unwrap_err();
        match err {
            BddError::BudgetExceeded { spent, limit, .. } => {
                assert_eq!(limit, 10);
                assert_eq!(spent, 11);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn effort_ticks_are_deterministic() {
        let spent = |n| {
            let mut m = Manager::new();
            xor_chain(&mut m, n).unwrap();
            m.effort_spent()
        };
        assert_eq!(spent(12), spent(12));
        assert!(spent(12) > spent(6));
    }

    #[test]
    fn seed_effort_preloads_the_counter() {
        let mut m = Manager::new();
        m.seed_effort(100);
        m.set_effort_limit(101);
        let err = xor_chain(&mut m, 8).unwrap_err();
        match err {
            BddError::BudgetExceeded { spent, .. } => assert!(spent > 100),
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn budget_fault_fires_once_at_the_armed_tick() {
        let mut m = Manager::new();
        m.arm_fault(Fault::Budget, 5);
        let err = xor_chain(&mut m, 16).unwrap_err();
        assert!(matches!(err, BddError::BudgetExceeded { spent: 5, .. }));
        // Disarmed: the same manager keeps working afterwards.
        let vars = m.new_vars(2);
        let a = m.literal_checked(vars[0], true).unwrap();
        let b = m.literal_checked(vars[1], true).unwrap();
        m.and(a, b).unwrap();
    }

    #[test]
    fn alloc_fault_reports_node_limit_at_arena_size() {
        let mut m = Manager::new();
        m.arm_fault(Fault::Alloc, 4);
        let err = xor_chain(&mut m, 16).unwrap_err();
        match err {
            BddError::NodeLimit { limit } => assert!(limit >= 1),
            other => panic!("expected NodeLimit, got {other:?}"),
        }
    }

    #[test]
    fn panic_fault_panics_with_the_tick_in_the_message() {
        let mut m = Manager::new();
        m.arm_fault(Fault::Panic, 3);
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = xor_chain(&mut m, 16);
        }))
        .unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("injected fault"), "unexpected payload: {msg}");
        assert!(msg.contains("tick 3"));
    }

    #[test]
    fn profiler_samples_ride_the_effort_clock() {
        bds_trace::profile::clear_profile();
        let mut m = Manager::new();
        while m.effort_spent() < 3 * bds_trace::profile::PROFILE_INTERVAL {
            xor_chain(&mut m, 8).unwrap();
        }
        let p = bds_trace::profile::take_profile();
        if bds_trace::is_enabled() {
            assert!(p.sample_total() >= 3, "got {p:?}");
            assert!(p
                .samples
                .keys()
                .all(|(_, op)| op == "ite" || op == "unique-insert"));
        } else {
            assert!(p.is_empty(), "sampling is a no-op without `trace`");
        }
    }

    #[test]
    fn fault_display_is_kebab_case() {
        assert_eq!(Fault::Budget.to_string(), "budget-exhausted");
        assert_eq!(Fault::Alloc.to_string(), "alloc-failure");
        assert_eq!(Fault::Panic.to_string(), "worker-panic");
    }
}
