//! Fast, deterministic hashing for the manager's hot tables.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 with a random
//! per-process seed. That is the wrong trade twice over for a BDD
//! package: the unique and computed tables are hit on *every* node
//! creation and *every* ITE step, so the keyed-per-byte SipHash rounds
//! dominate the lookup cost; and the random seed makes iteration order
//! (and therefore anything careless enough to observe it) differ
//! between runs, which the flow's byte-identical determinism contract
//! cannot tolerate even as a latent hazard.
//!
//! [`FastHasher`] is a wyhash-style multiply–rotate–xor word hasher
//! (zero dependencies, fixed seed): each 64-bit word costs one rotate,
//! one xor and one multiply, and [`FastHasher::finish`] applies a
//! splitmix64-style finalizer so low-entropy keys (small node indices,
//! small levels) still spread across the table. The packed table keys
//! of [`crate::nid`] are single `u128` values, so a unique- or
//! computed-table lookup hashes exactly two words.
//!
//! HashDoS resistance is deliberately traded away: keys are internal
//! node indices produced by the manager itself, never attacker-chosen
//! input.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier for the word-folding rounds (the fractional part of
/// the golden ratio, as popularized by Fibonacci hashing).
const FOLD: u64 = 0x9e37_79b9_7f4a_7c15;

/// splitmix64-style finalizer: full-avalanche mixing of a 64-bit word.
#[inline]
#[must_use]
pub(crate) fn mix64(x: u64) -> u64 {
    let mut x = x;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The word hasher used by the unique and computed tables (and the
/// smaller per-call memo tables). Fixed seed, deterministic across
/// runs, processes and thread counts.
#[derive(Default)]
pub(crate) struct FastHasher {
    state: u64,
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix64(self.state)
    }

    /// Byte-slice fallback (FNV-1a) for keys that are not plain words —
    /// only reached by derived `Hash` impls over non-integer fields.
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.state = (self.state.rotate_left(5) ^ x).wrapping_mul(FOLD);
    }

    #[inline]
    fn write_u128(&mut self, x: u128) {
        // Two folding rounds: the whole packed key in two multiplies.
        self.write_u64(x as u64);
        self.write_u64((x >> 64) as u64);
    }

    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.write_u64(u64::from(x));
    }

    #[inline]
    fn write_u8(&mut self, x: u8) {
        self.write_u64(u64::from(x));
    }

    #[inline]
    fn write_u16(&mut self, x: u16) {
        self.write_u64(u64::from(x));
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

/// `BuildHasher` for [`FastHasher`]: stateless, so every map built from
/// it hashes identically.
pub(crate) type FastBuild = BuildHasherDefault<FastHasher>;

/// A `HashMap` on the fast deterministic hasher. Drop-in for the
/// manager's tables and memo maps.
pub(crate) type FastMap<K, V> = HashMap<K, V, FastBuild>;

/// The exact 64-bit hash the tables apply to a packed `u128` key —
/// exposed so the chain-length model in `stats.rs` buckets keys with
/// the *real* table hash rather than a simulation of a different one.
#[inline]
#[must_use]
pub(crate) fn hash_packed(key: u128) -> u64 {
    let mut h = FastHasher::default();
    h.write_u128(key);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        for key in [0u128, 1, 42, u128::MAX, 0xdead_beef_0000_0001] {
            assert_eq!(hash_packed(key), hash_packed(key));
        }
    }

    #[test]
    fn nearby_keys_do_not_collide() {
        // Sequential node indices are the common case; the finalizer
        // must spread them. Check 64-bit truncation and low byte too.
        let hashes: Vec<u64> = (0..4096u128).map(hash_packed).collect();
        let mut low_bytes: Vec<u8> = hashes.iter().map(|h| (h & 0x7f) as u8).collect();
        low_bytes.sort_unstable();
        low_bytes.dedup();
        assert!(low_bytes.len() > 100, "low bits are clumpy");
        let mut unique = hashes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), hashes.len(), "full hashes collide");
    }

    #[test]
    fn fast_map_behaves_like_a_map() {
        let mut m: FastMap<u128, u32> = FastMap::default();
        for i in 0..1000u32 {
            m.insert(u128::from(i) << 13, i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(u128::from(i) << 13)), Some(&i));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn write_paths_agree_on_words() {
        // u32/u16/u8/usize all promote to the u64 folding round.
        let via_u64 = {
            let mut h = FastHasher::default();
            h.write_u64(7);
            h.finish()
        };
        let via_u32 = {
            let mut h = FastHasher::default();
            h.write_u32(7);
            h.finish()
        };
        assert_eq!(via_u64, via_u32);
    }
}
