//! Product-term (cube) values extracted from BDDs.

use std::fmt;

use crate::edge::{Edge, Var};
use crate::manager::Manager;
use crate::Result;

/// A product term over manager variables: a conjunction of literals.
///
/// Cubes are what [`Manager::isop`](crate::Manager::isop) returns and what
/// the network layer uses to exchange two-level logic with the `bds-sop`
/// algebra.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Cube {
    /// Literals as `(variable, phase)` pairs, sorted by variable index,
    /// each variable appearing at most once.
    lits: Vec<(Var, bool)>,
}

impl Cube {
    /// The empty cube — the constant-true product.
    pub fn top() -> Self {
        Cube { lits: Vec::new() }
    }

    /// Builds a cube from literals; sorts and deduplicates.
    ///
    /// Returns `None` if the literals are contradictory (both phases of a
    /// variable present).
    pub fn from_lits(mut lits: Vec<(Var, bool)>) -> Option<Self> {
        lits.sort_unstable_by_key(|&(v, _)| v);
        lits.dedup();
        for w in lits.windows(2) {
            if w[0].0 == w[1].0 {
                return None;
            }
        }
        Some(Cube { lits })
    }

    /// The literals of this cube, sorted by variable.
    pub fn literals(&self) -> &[(Var, bool)] {
        &self.lits
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// True for the constant-true cube.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Prepends a literal known to be above all current literals'
    /// variables (used by ISOP extraction).
    pub(crate) fn with_lit(&self, var: Var, phase: bool) -> Cube {
        let mut lits = Vec::with_capacity(self.lits.len() + 1);
        lits.push((var, phase));
        lits.extend_from_slice(&self.lits);
        lits.sort_unstable_by_key(|&(v, _)| v);
        Cube { lits }
    }

    /// Evaluates the cube under a total assignment indexed by variable.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.lits.iter().all(|&(v, p)| assignment[v.index()] == p)
    }
}

impl Manager {
    /// Builds the BDD of a single cube.
    ///
    /// # Errors
    /// [`crate::BddError::UnknownVar`] / [`crate::BddError::NodeLimit`].
    pub fn cube(&mut self, cube: &Cube) -> Result<Edge> {
        let mut acc = Edge::ONE;
        for &(v, p) in cube.literals() {
            let lit = self.literal_checked(v, p)?;
            acc = self.and(acc, lit)?;
        }
        Ok(acc)
    }

    /// Builds the BDD of a sum of cubes.
    ///
    /// # Errors
    /// [`crate::BddError::UnknownVar`] / [`crate::BddError::NodeLimit`].
    pub fn sum_of_cubes(&mut self, cubes: &[Cube]) -> Result<Edge> {
        let mut acc = Edge::ZERO;
        for c in cubes {
            let cb = self.cube(c)?;
            acc = self.or(acc, cb)?;
        }
        Ok(acc)
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return write!(f, "1");
        }
        for (i, (v, p)) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            write!(f, "{}{}", if *p { "" } else { "!" }, v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contradictory_cube_rejected() {
        let v = Var::from_index(0);
        assert!(Cube::from_lits(vec![(v, true), (v, false)]).is_none());
        assert!(Cube::from_lits(vec![(v, true), (v, true)]).is_some());
    }

    #[test]
    fn cube_bdd_round_trip() {
        let mut m = Manager::new();
        let vars = m.new_vars(3);
        let c = Cube::from_lits(vec![(vars[0], true), (vars[2], false)]).unwrap();
        let e = m.cube(&c).unwrap();
        for bits in 0..8u32 {
            let assign: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(m.eval(e, &assign), c.eval(&assign));
        }
    }

    #[test]
    fn display_forms() {
        let v0 = Var::from_index(0);
        let v1 = Var::from_index(1);
        let c = Cube::from_lits(vec![(v0, true), (v1, false)]).unwrap();
        assert_eq!(c.to_string(), "v0·!v1");
        assert_eq!(Cube::top().to_string(), "1");
    }
}
