//! Compact edge and variable handles.

use std::fmt;

/// A Boolean variable handle.
///
/// Variables are created by [`Manager::new_var`](crate::Manager::new_var)
/// and are stable identities: reordering changes a variable's *level*
/// (position in the order), never its `Var` handle.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Returns the raw index of this variable within its manager.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `Var` from a raw index.
    ///
    /// Only meaningful for indexes previously obtained from the same
    /// manager via [`Var::index`].
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Var(index as u32)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A (possibly complemented) reference to a BDD node — a bex-style
/// packed *nid*.
///
/// The whole reference is one `u32` word:
///
/// ```text
/// bit 0      complement attribute
/// bits 1..   node index into the owning manager's arena
/// ```
///
/// The constants are *inlined*: node 0 is the terminal, so
/// [`Edge::ONE`] is raw `0` and [`Edge::ZERO`] (the complemented
/// terminal) is raw `1` — constant tests are single integer compares,
/// complementation is one xor, and an edge costs 4 bytes wherever it is
/// stored (node structs, table keys, memo tables). Edges are only
/// meaningful together with the manager that produced them.
///
/// The table keys built from nids are packed the same way — see
/// `nid.rs` for the `u128` key layouts.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge(pub(crate) u32);

impl Edge {
    /// The constant-true function.
    pub const ONE: Edge = Edge(0);
    /// The constant-false function (complemented terminal).
    pub const ZERO: Edge = Edge(1);

    #[inline]
    pub(crate) fn new(node: u32, complement: bool) -> Self {
        Edge(node << 1 | complement as u32)
    }

    /// Index of the referenced node within the manager arena.
    #[inline]
    pub(crate) fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Returns `true` if this edge carries the complement attribute.
    #[inline]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 != 0
    }

    /// Returns the complement of this function (an O(1) operation).
    #[inline]
    pub fn complement(self) -> Edge {
        Edge(self.0 ^ 1)
    }

    /// Complements this edge iff `c` is true.
    #[inline]
    pub fn complement_if(self, c: bool) -> Edge {
        Edge(self.0 ^ c as u32)
    }

    /// Strips the complement attribute, yielding the regular edge.
    #[inline]
    pub fn regular(self) -> Edge {
        Edge(self.0 & !1)
    }

    /// Returns `true` for the constant functions `ONE` / `ZERO`.
    #[inline]
    pub fn is_const(self) -> bool {
        self.node() == 0
    }

    /// Returns `true` if this is the constant-true function.
    #[inline]
    pub fn is_one(self) -> bool {
        self == Edge::ONE
    }

    /// Returns `true` if this is the constant-false function.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Edge::ZERO
    }

    /// A stable opaque id, useful as a hash/map key across data structures.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::ops::Not for Edge {
    type Output = Edge;
    #[inline]
    fn not(self) -> Edge {
        self.complement()
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_one() {
            write!(f, "⊤")
        } else if self.is_zero() {
            write!(f, "⊥")
        } else if self.is_complemented() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_complements() {
        assert_eq!(Edge::ONE.complement(), Edge::ZERO);
        assert_eq!(Edge::ZERO.complement(), Edge::ONE);
        assert_eq!(!Edge::ONE, Edge::ZERO);
    }

    #[test]
    fn regular_strips_complement() {
        let e = Edge::new(7, true);
        assert!(e.is_complemented());
        assert!(!e.regular().is_complemented());
        assert_eq!(e.regular().node(), 7);
    }

    #[test]
    fn complement_if_matches_complement() {
        let e = Edge::new(3, false);
        assert_eq!(e.complement_if(true), e.complement());
        assert_eq!(e.complement_if(false), e);
    }

    #[test]
    fn const_queries() {
        assert!(Edge::ONE.is_const() && Edge::ZERO.is_const());
        assert!(Edge::ONE.is_one() && !Edge::ONE.is_zero());
        assert!(Edge::ZERO.is_zero() && !Edge::ZERO.is_one());
        assert!(!Edge::new(1, false).is_const());
    }
}
