//! Structural queries: node counts, support, satisfy/path counts.

use std::collections::HashSet;

use crate::edge::{Edge, Var};
use crate::manager::Manager;

impl Manager {
    /// Number of distinct nodes (including the terminal) in the shared
    /// graph of `roots`. This is the cost function used throughout the BDS
    /// flow ("the number of BDD nodes … instead of the literal count",
    /// paper §IV-B).
    pub fn count_nodes(&self, roots: &[Edge]) -> usize {
        let mut seen = HashSet::new();
        let mut stack: Vec<u32> = roots.iter().map(|e| e.node()).collect();
        while let Some(idx) = stack.pop() {
            if !seen.insert(idx) {
                continue;
            }
            if idx == 0 {
                continue;
            }
            let n = &self.nodes[idx as usize];
            stack.push(n.high.node());
            stack.push(n.low.node());
        }
        seen.len()
    }

    /// Convenience for a single root: `count_nodes(&[e])`.
    pub fn size(&self, e: Edge) -> usize {
        self.count_nodes(&[e])
    }

    /// The support of `e`: every variable the function depends on,
    /// ordered by current level (topmost first).
    pub fn support(&self, e: Edge) -> Vec<Var> {
        let mut levels = HashSet::new();
        let mut seen = HashSet::new();
        let mut stack = vec![e.node()];
        while let Some(idx) = stack.pop() {
            if idx == 0 || !seen.insert(idx) {
                continue;
            }
            let n = &self.nodes[idx as usize];
            levels.insert(n.level);
            stack.push(n.high.node());
            stack.push(n.low.node());
        }
        // lint:allow(iter-order) — collected and sort_unstable'd just below
        let mut lv: Vec<u32> = levels.into_iter().collect();
        lv.sort_unstable();
        lv.into_iter().map(|l| self.var_at(l)).collect()
    }

    /// Combined support of several functions, ordered by level.
    pub fn support_of(&self, roots: &[Edge]) -> Vec<Var> {
        let mut set: HashSet<Var> = HashSet::new();
        for &r in roots {
            set.extend(self.support(r));
        }
        // lint:allow(iter-order) — collected, then sorted by level (unique per var)
        let mut v: Vec<Var> = set.into_iter().collect();
        v.sort_by_key(|&var| self.level_of(var));
        v
    }

    /// Number of satisfying assignments over `nvars` variables, as `f64`
    /// (exact for < 2⁵³).
    pub fn sat_count(&self, e: Edge, nvars: usize) -> f64 {
        fn rec(m: &Manager, e: Edge, memo: &mut std::collections::HashMap<Edge, f64>) -> f64 {
            // Fraction of the full space that satisfies e.
            if e.is_one() {
                return 1.0;
            }
            if e.is_zero() {
                return 0.0;
            }
            if let Some(&r) = memo.get(&e) {
                return r;
            }
            // lint:allow(panic) — guarded: e is non-constant here
            let (_, t, el) = m.node(e).expect("non-const");
            let r = 0.5 * rec(m, t, memo) + 0.5 * rec(m, el, memo);
            memo.insert(e, r);
            r
        }
        let mut memo = std::collections::HashMap::new();
        rec(self, e, &mut memo) * (nvars as f64).exp2()
    }

    /// Returns `(one_paths, zero_paths)`: the number of paths from `e` to
    /// the 1- and 0-terminal in the complement-edge-resolved view of the
    /// graph. Saturates at `u64::MAX`.
    ///
    /// Path counts drive the dominator searches of the decomposition
    /// engine (paper §III-A, Theorem 1 context).
    pub fn count_paths(&self, e: Edge) -> (u64, u64) {
        let mut memo = std::collections::HashMap::new();
        self.count_paths_rec(e, &mut memo)
    }

    fn count_paths_rec(
        &self,
        e: Edge,
        memo: &mut std::collections::HashMap<Edge, (u64, u64)>,
    ) -> (u64, u64) {
        if e.is_one() {
            return (1, 0);
        }
        if e.is_zero() {
            return (0, 1);
        }
        if let Some(&r) = memo.get(&e) {
            return r;
        }
        // lint:allow(panic) — guarded: e is non-constant here
        let (_, t, el) = self.node(e).expect("non-const");
        let (t1, t0) = self.count_paths_rec(t, memo);
        let (e1, e0) = self.count_paths_rec(el, memo);
        let r = (t1.saturating_add(e1), t0.saturating_add(e0));
        memo.insert(e, r);
        r
    }

    /// True iff the function depends on `var`.
    pub fn depends_on(&self, e: Edge, var: Var) -> bool {
        let lvl = self.level_of(var);
        let mut seen = HashSet::new();
        let mut stack = vec![e.node()];
        while let Some(idx) = stack.pop() {
            if idx == 0 || !seen.insert(idx) {
                continue;
            }
            let n = &self.nodes[idx as usize];
            if n.level == lvl {
                return true;
            }
            if n.level < lvl {
                stack.push(n.high.node());
                stack.push(n.low.node());
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use crate::{Edge, Manager};

    #[test]
    fn size_and_support() {
        let mut m = Manager::new();
        let vars = m.new_vars(3);
        let lits: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
        let ab = m.and(lits[0], lits[1]).unwrap();
        let f = m.or(ab, lits[2]).unwrap();
        assert_eq!(m.support(f), vars);
        assert_eq!(m.size(f), 4); // 3 decision nodes + terminal
        assert_eq!(m.size(Edge::ONE), 1);
        assert!(m.depends_on(f, vars[0]));
        let g = lits[2];
        assert!(!m.depends_on(g, vars[0]));
    }

    #[test]
    fn shared_count_is_not_a_sum() {
        let mut m = Manager::new();
        let vars = m.new_vars(2);
        let la = m.literal(vars[0], true);
        let lb = m.literal(vars[1], true);
        let f = m.and(la, lb).unwrap();
        let g = m.or(la, lb).unwrap();
        let both = m.count_nodes(&[f, g]);
        assert!(both < m.size(f) + m.size(g));
    }

    #[test]
    fn sat_count_matches_truth_table() {
        let mut m = Manager::new();
        let vars = m.new_vars(3);
        let lits: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
        let ab = m.and(lits[0], lits[1]).unwrap();
        let f = m.or(ab, lits[2]).unwrap(); // a·b + c : 5 minterms of 8
        assert_eq!(m.sat_count(f, 3), 5.0);
        assert_eq!(m.sat_count(Edge::ONE, 3), 8.0);
        assert_eq!(m.sat_count(Edge::ZERO, 3), 0.0);
    }

    #[test]
    fn path_counts() {
        let mut m = Manager::new();
        let vars = m.new_vars(2);
        let la = m.literal(vars[0], true);
        let lb = m.literal(vars[1], true);
        let f = m.and(la, lb).unwrap();
        // Paths: a=1,b=1 → 1 ; a=0 → 0 ; a=1,b=0 → 0.
        assert_eq!(m.count_paths(f), (1, 2));
        let g = m.xor(la, lb).unwrap();
        assert_eq!(m.count_paths(g), (2, 2));
    }
}
