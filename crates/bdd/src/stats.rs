//! Operation counters and table statistics for the [`Manager`].
//!
//! The counters answer the questions the paper's evaluation and the
//! ROADMAP's performance work keep asking: how hard is the computed
//! table working (hit rate), how loaded is the unique table, and how
//! much structure did `restrict`/`ite` actually chew through. They are
//! plain `u64` field increments on paths that already mutate the
//! manager, so they stay on unconditionally; the registry-level `trace`
//! feature only affects the `bds-trace` macros layered on top.

use crate::edge::Edge;
use crate::manager::Manager;

/// Number of log2 recursion-depth buckets for computed-table misses:
/// bucket 0 is depth 0, bucket `i > 0` covers depths `2^(i-1)..2^i`,
/// and the last bucket absorbs everything deeper.
pub const MISS_DEPTH_BUCKETS: usize = 8;

/// Log2 bucket index for a recursion depth (saturating at the last
/// bucket, see [`MISS_DEPTH_BUCKETS`]).
#[must_use]
pub fn miss_depth_bucket(depth: u32) -> usize {
    ((u32::BITS - depth.leading_zeros()) as usize).min(MISS_DEPTH_BUCKETS - 1)
}

/// Monotonic operation counters accumulated over a [`Manager`]'s
/// lifetime. Obtain a copy via [`Manager::op_stats`] or as part of
/// [`Manager::table_stats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Total `ite` invocations, including internal recursive calls.
    pub ite_calls: u64,
    /// `ite` calls resolved by a terminal case or argument
    /// normalization, before the computed table was even consulted.
    pub terminal_hits: u64,
    /// Computed-table lookups that found a memoized result.
    pub cache_hits: u64,
    /// Computed-table lookups that missed and forced a recursion.
    pub cache_misses: u64,
    /// Computed-table misses bucketed by the log2 of the recursion depth
    /// they occurred at (`miss_depth.iter().sum() == cache_misses`).
    /// Shallow misses are cold first touches; a fat tail of deep misses
    /// means the cache is thrashing inside recursions.
    pub miss_depth: [u64; MISS_DEPTH_BUCKETS],
    /// Top-level `restrict` invocations.
    pub restrict_calls: u64,
    /// Restrict memo-table lookups that found an entry.
    pub restrict_hits: u64,
    /// Restrict memo-table lookups that missed.
    pub restrict_misses: u64,
    /// Cross-manager transfer memo hits (counted on the destination).
    pub transfer_hits: u64,
    /// Cross-manager transfer memo misses (nodes actually rebuilt).
    pub transfer_misses: u64,
    /// Unique-table lookups that found an existing node (hash-cons hits).
    pub unique_hits: u64,
    /// Decision nodes freshly created in the arena.
    pub nodes_created: u64,
}

impl OpStats {
    /// Adds `other`'s counts into `self` — used to aggregate over the
    /// several managers a synthesis flow creates and discards.
    pub fn merge(&mut self, other: &OpStats) {
        self.ite_calls += other.ite_calls;
        self.terminal_hits += other.terminal_hits;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        for (d, o) in self.miss_depth.iter_mut().zip(other.miss_depth.iter()) {
            *d += o;
        }
        self.restrict_calls += other.restrict_calls;
        self.restrict_hits += other.restrict_hits;
        self.restrict_misses += other.restrict_misses;
        self.transfer_hits += other.transfer_hits;
        self.transfer_misses += other.transfer_misses;
        self.unique_hits += other.unique_hits;
        self.nodes_created += other.nodes_created;
    }

    /// Counts accumulated since `baseline` was snapshotted off the same
    /// manager: per-field saturating subtraction. Used by flow phases
    /// that keep one warm manager across a phase boundary and must
    /// attribute each phase's operations exactly once.
    #[must_use]
    pub fn delta_since(&self, baseline: &OpStats) -> OpStats {
        let mut d = OpStats {
            ite_calls: self.ite_calls.saturating_sub(baseline.ite_calls),
            terminal_hits: self.terminal_hits.saturating_sub(baseline.terminal_hits),
            cache_hits: self.cache_hits.saturating_sub(baseline.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(baseline.cache_misses),
            miss_depth: [0; MISS_DEPTH_BUCKETS],
            restrict_calls: self.restrict_calls.saturating_sub(baseline.restrict_calls),
            restrict_hits: self.restrict_hits.saturating_sub(baseline.restrict_hits),
            restrict_misses: self
                .restrict_misses
                .saturating_sub(baseline.restrict_misses),
            transfer_hits: self.transfer_hits.saturating_sub(baseline.transfer_hits),
            transfer_misses: self
                .transfer_misses
                .saturating_sub(baseline.transfer_misses),
            unique_hits: self.unique_hits.saturating_sub(baseline.unique_hits),
            nodes_created: self.nodes_created.saturating_sub(baseline.nodes_created),
        };
        for (slot, (cur, base)) in d
            .miss_depth
            .iter_mut()
            .zip(self.miss_depth.iter().zip(baseline.miss_depth.iter()))
        {
            *slot = cur.saturating_sub(*base);
        }
        d
    }

    /// Merges an iterator of per-manager (or per-worker) counter sets
    /// into one total. Addition is commutative, so the result does not
    /// depend on the order worker threads finished in — the property the
    /// sharded flow relies on to keep its reports deterministic.
    #[must_use]
    pub fn merged<'a>(stats: impl IntoIterator<Item = &'a OpStats>) -> OpStats {
        let mut total = OpStats::default();
        for s in stats {
            total.merge(s);
        }
        total
    }

    /// Computed-table hit rate in `[0, 1]`, or 0.0 before any lookup.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        Self::rate(self.cache_hits, self.cache_misses)
    }

    /// Restrict memo hit rate in `[0, 1]`, or 0.0 before any lookup.
    #[must_use]
    pub fn restrict_hit_rate(&self) -> f64 {
        Self::rate(self.restrict_hits, self.restrict_misses)
    }

    /// Transfer memo hit rate in `[0, 1]`, or 0.0 before any lookup.
    #[must_use]
    pub fn transfer_hit_rate(&self) -> f64 {
        Self::rate(self.transfer_hits, self.transfer_misses)
    }

    fn rate(hits: u64, misses: u64) -> f64 {
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            // Counter magnitudes sit far below f64's exact-integer range.
            #[allow(clippy::cast_precision_loss)]
            {
                hits as f64 / total as f64
            }
        }
    }
}

impl std::iter::Sum for OpStats {
    fn sum<I: Iterator<Item = OpStats>>(iter: I) -> Self {
        let mut total = OpStats::default();
        for s in iter {
            total.merge(&s);
        }
        total
    }
}

impl<'a> std::iter::Sum<&'a OpStats> for OpStats {
    fn sum<I: Iterator<Item = &'a OpStats>>(iter: I) -> Self {
        OpStats::merged(iter)
    }
}

/// A point-in-time snapshot of a [`Manager`]'s tables, returned by
/// [`Manager::table_stats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Live nodes in the arena, including the terminal.
    pub arena_nodes: usize,
    /// Entries in the unique (hash-cons) table.
    pub unique_entries: usize,
    /// Allocated capacity of the unique table.
    pub unique_capacity: usize,
    /// Entries in the ITE computed table.
    pub computed_entries: usize,
    /// Allocated capacity of the computed table.
    pub computed_capacity: usize,
    /// Operation counters accumulated since the manager was created.
    pub ops: OpStats,
}

impl TableStats {
    /// Unique-table load factor `entries / capacity` in `[0, 1]`, or 0.0
    /// while the table is unallocated.
    #[must_use]
    pub fn unique_load_factor(&self) -> f64 {
        if self.unique_capacity == 0 {
            0.0
        } else {
            // Table sizes sit far below f64's exact-integer range.
            #[allow(clippy::cast_precision_loss)]
            {
                self.unique_entries as f64 / self.unique_capacity as f64
            }
        }
    }

    /// Computed-table hit rate in `[0, 1]` (see [`OpStats::cache_hit_rate`]).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        self.ops.cache_hit_rate()
    }

    /// Estimated bytes held by the manager: arena nodes at their struct
    /// size plus both hash tables at capacity × (key + value + one
    /// control byte). An accounting model, not an allocator measurement
    /// — but it is **deterministic** (capacities depend only on the
    /// insertion history), so peaks can be gated exactly across runs
    /// and thread counts.
    #[must_use]
    pub fn estimated_bytes(&self) -> usize {
        // Node is (u32 level, Edge high, Edge low); Edge is a u32 wrapper.
        let node = std::mem::size_of::<crate::manager::Node>();
        // The tables key on packed u128 words (see `nid.rs`), so a slot
        // is key + value + one control byte.
        let unique_slot =
            std::mem::size_of::<crate::nid::UniqueKey>() + std::mem::size_of::<u32>() + 1;
        let computed_slot =
            std::mem::size_of::<crate::nid::IteKey>() + std::mem::size_of::<Edge>() + 1;
        self.arena_nodes * node
            + self.unique_capacity * unique_slot
            + self.computed_capacity * computed_slot
    }
}

impl Manager {
    /// Snapshots the sizes and load of the unique and computed tables
    /// together with the lifetime operation counters.
    #[must_use]
    pub fn table_stats(&self) -> TableStats {
        TableStats {
            arena_nodes: self.nodes.len(),
            unique_entries: self.unique.len(),
            unique_capacity: self.unique.capacity(),
            computed_entries: self.ite_cache.len(),
            computed_capacity: self.ite_cache.capacity(),
            ops: self.ops,
        }
    }

    /// Copies the lifetime operation counters.
    #[must_use]
    pub fn op_stats(&self) -> OpStats {
        self.ops
    }

    /// Number of decision nodes currently sitting at each level of the
    /// order (`result[level]`; the terminal is not counted). The shape
    /// of this profile is the raw input an information-driven reorder
    /// heuristic needs, and a cheap "where did the nodes go" answer for
    /// memory work.
    #[must_use]
    pub fn level_node_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.var_count()];
        for n in self.nodes.iter().skip(1) {
            if let Some(slot) = counts.get_mut(n.level as usize) {
                *slot += 1;
            }
        }
        counts
    }

    /// Collision-chain lengths of the unique table under the table's
    /// *actual* hash (the in-tree fast hash over the packed key — see
    /// `hash.rs`), bucketed modulo the table capacity: the occupancy
    /// count of every non-empty bucket.
    ///
    /// `std::collections::HashMap` does not expose its buckets, so this
    /// simulates the distribution. Because the fast hash is fixed and
    /// seedless, the model uses the very function the table uses — the
    /// histogram is an honest picture of the deployed hash, not a proxy
    /// — and the result depends only on the key set and capacity,
    /// making it deterministic across runs and thread counts.
    #[must_use]
    pub fn unique_chain_lengths(&self) -> Vec<u64> {
        let buckets = self.unique.capacity();
        if buckets == 0 {
            return Vec::new();
        }
        let mut occupancy = vec![0u64; buckets];
        for key in self.unique.keys() {
            let h = crate::hash::hash_packed(key.raw());
            occupancy[(h % buckets as u64) as usize] += 1;
        }
        let mut chains: Vec<u64> = occupancy.into_iter().filter(|&c| c > 0).collect();
        // Deterministic output order: HashMap iteration order fed the
        // counts (order-independent), but the collection order of the
        // non-empty buckets is not meaningful — sort it away.
        chains.sort_unstable();
        chains
    }

    /// Number of arena nodes unreachable from `roots` — the garbage a
    /// rebuild (sift, transfer-compact) would shed. The terminal and
    /// reachable nodes are live; everything else is the dead-node
    /// census the flow reports after its sweep/eliminate phases.
    #[must_use]
    pub fn dead_node_count(&self, roots: &[Edge]) -> usize {
        let mut live = vec![false; self.nodes.len()];
        live[0] = true; // terminal
        let mut stack: Vec<u32> = roots
            .iter()
            .filter(|e| !e.is_const())
            .map(|e| e.node())
            .collect();
        while let Some(idx) = stack.pop() {
            if std::mem::replace(&mut live[idx as usize], true) {
                continue;
            }
            let n = &self.nodes[idx as usize];
            for child in [n.high, n.low] {
                if !child.is_const() && !live[child.node() as usize] {
                    stack.push(child.node());
                }
            }
        }
        live.iter().filter(|&&l| !l).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_ite_and_tables() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let b = m.new_var("b");
        let c = m.new_var("c");
        let la = m.literal(a, true);
        let lb = m.literal(b, true);
        let lc = m.literal(c, true);
        // Literal-on-literal ops take the literal fast path (terminal
        // hits, no table traffic); a composite operand forces a genuine
        // computed-table miss.
        let ab = m.and(la, lb).unwrap();
        let and1 = m.and(ab, lc).unwrap();
        let before = m.table_stats();
        assert!(before.ops.ite_calls >= 1);
        assert!(before.ops.terminal_hits >= 1);
        assert!(before.ops.cache_misses >= 1);
        assert!(before.ops.nodes_created >= 4); // three literals + the AND chain
        assert_eq!(before.arena_nodes, m.arena_size());
        assert_eq!(before.unique_entries, before.arena_nodes - 1);
        assert!(before.unique_capacity >= before.unique_entries);

        // The symmetric call normalizes to the same computed-table key.
        let and2 = m.and(lc, ab).unwrap();
        assert_eq!(and1, and2);
        let after = m.table_stats();
        assert!(after.ops.cache_hits > before.ops.cache_hits);
        assert!(after.cache_hit_rate() > 0.0);
        assert!(after.unique_load_factor() > 0.0 && after.unique_load_factor() <= 1.0);
    }

    #[test]
    fn merge_sums_every_field() {
        let mut a = OpStats {
            ite_calls: 1,
            terminal_hits: 7,
            cache_hits: 2,
            cache_misses: 3,
            miss_depth: [1, 0, 2, 0, 0, 0, 0, 0],
            restrict_calls: 4,
            restrict_hits: 8,
            restrict_misses: 9,
            transfer_hits: 11,
            transfer_misses: 12,
            unique_hits: 5,
            nodes_created: 6,
        };
        let b = OpStats {
            ite_calls: 10,
            terminal_hits: 70,
            cache_hits: 20,
            cache_misses: 30,
            miss_depth: [10, 20, 0, 0, 0, 0, 0, 0],
            restrict_calls: 40,
            restrict_hits: 80,
            restrict_misses: 90,
            transfer_hits: 110,
            transfer_misses: 120,
            unique_hits: 50,
            nodes_created: 60,
        };
        a.merge(&b);
        assert_eq!(
            a,
            OpStats {
                ite_calls: 11,
                terminal_hits: 77,
                cache_hits: 22,
                cache_misses: 33,
                miss_depth: [11, 20, 2, 0, 0, 0, 0, 0],
                restrict_calls: 44,
                restrict_hits: 88,
                restrict_misses: 99,
                transfer_hits: 121,
                transfer_misses: 132,
                unique_hits: 55,
                nodes_created: 66,
            }
        );
    }

    #[test]
    fn delta_since_inverts_merge_on_every_field() {
        let baseline = OpStats {
            ite_calls: 1,
            terminal_hits: 7,
            cache_hits: 2,
            cache_misses: 3,
            miss_depth: [1, 0, 2, 0, 0, 0, 0, 0],
            restrict_calls: 4,
            restrict_hits: 8,
            restrict_misses: 9,
            transfer_hits: 11,
            transfer_misses: 12,
            unique_hits: 5,
            nodes_created: 6,
        };
        let growth = OpStats {
            ite_calls: 10,
            terminal_hits: 70,
            cache_hits: 20,
            cache_misses: 30,
            miss_depth: [10, 20, 0, 0, 0, 0, 0, 0],
            restrict_calls: 40,
            restrict_hits: 80,
            restrict_misses: 90,
            transfer_hits: 110,
            transfer_misses: 120,
            unique_hits: 50,
            nodes_created: 60,
        };
        let mut total = baseline;
        total.merge(&growth);
        // Counters are monotonic, so the delta off a later snapshot of
        // the same manager recovers exactly the growth.
        assert_eq!(total.delta_since(&baseline), growth);
        assert_eq!(total.delta_since(&total), OpStats::default());
    }

    #[test]
    fn miss_depth_buckets_are_log2() {
        assert_eq!(miss_depth_bucket(0), 0);
        assert_eq!(miss_depth_bucket(1), 1);
        assert_eq!(miss_depth_bucket(2), 2);
        assert_eq!(miss_depth_bucket(3), 2);
        assert_eq!(miss_depth_bucket(4), 3);
        assert_eq!(miss_depth_bucket(63), 6);
        assert_eq!(miss_depth_bucket(64), 7);
        assert_eq!(miss_depth_bucket(u32::MAX), MISS_DEPTH_BUCKETS - 1);
    }

    #[test]
    fn miss_depth_sums_to_cache_misses() {
        let mut m = Manager::new();
        let vars: Vec<_> = (0..8).map(|i| m.new_var(format!("x{i}"))).collect();
        let mut acc = m.literal(vars[0], true);
        for v in &vars[1..] {
            let lit = m.literal(*v, true);
            acc = m.xor(acc, lit).unwrap();
        }
        let ops = m.op_stats();
        assert!(ops.cache_misses > 0);
        assert_eq!(ops.miss_depth.iter().sum::<u64>(), ops.cache_misses);
        assert!(ops.terminal_hits > 0);
        assert_eq!(
            ops.ite_calls,
            ops.terminal_hits + ops.cache_hits + ops.cache_misses
        );
    }

    #[test]
    fn estimated_bytes_counts_arena_and_tables() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let b = m.new_var("b");
        let la = m.literal(a, true);
        let lb = m.literal(b, true);
        let _ = m.and(la, lb).unwrap();
        let stats = m.table_stats();
        let bytes = stats.estimated_bytes();
        // At minimum the arena nodes at their struct size.
        assert!(bytes >= stats.arena_nodes * std::mem::size_of::<crate::manager::Node>());
        // Monotone in capacity: a fresh empty manager models fewer bytes.
        assert!(bytes > Manager::new().table_stats().estimated_bytes());
    }

    #[test]
    fn level_counts_and_chains_reflect_the_table() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let b = m.new_var("b");
        let c = m.new_var("c");
        let la = m.literal(a, true);
        let lb = m.literal(b, true);
        let lc = m.literal(c, true);
        let ab = m.and(la, lb).unwrap();
        let _ = m.or(ab, lc).unwrap();

        let counts = m.level_node_counts();
        assert_eq!(counts.len(), 3);
        assert_eq!(
            counts.iter().sum::<u64>() as usize,
            m.arena_size() - 1,
            "every non-terminal node sits at exactly one level"
        );

        let chains = m.unique_chain_lengths();
        assert_eq!(
            chains.iter().sum::<u64>() as usize,
            m.table_stats().unique_entries,
            "chain occupancy partitions the key set"
        );
        assert!(chains.windows(2).all(|w| w[0] <= w[1]), "sorted output");
    }

    #[test]
    fn dead_node_census_finds_garbage() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let b = m.new_var("b");
        let la = m.literal(a, true);
        let lb = m.literal(b, true);
        let and = m.and(la, lb).unwrap();
        // The AND's graph is {and-node, b-literal, terminal}: the
        // standalone a-literal node is the one piece of garbage.
        assert_eq!(m.dead_node_count(&[and]), 1);
        // Keeping every root alive leaves nothing dead.
        assert_eq!(m.dead_node_count(&[and, la, lb]), 0);
        // No roots at all: every non-terminal node is dead.
        assert_eq!(m.dead_node_count(&[]), m.arena_size() - 1);
        // Constant roots contribute nothing.
        assert_eq!(m.dead_node_count(&[Edge::ONE]), m.arena_size() - 1);
    }

    #[test]
    fn sum_and_merged_aggregate_in_any_order() {
        let parts = [
            OpStats {
                ite_calls: 1,
                nodes_created: 2,
                ..OpStats::default()
            },
            OpStats {
                ite_calls: 10,
                cache_hits: 5,
                ..OpStats::default()
            },
            OpStats {
                unique_hits: 3,
                ..OpStats::default()
            },
        ];
        let forward: OpStats = parts.iter().sum();
        let backward: OpStats = parts.iter().rev().copied().sum();
        assert_eq!(forward, backward);
        assert_eq!(forward, OpStats::merged(&parts));
        assert_eq!(forward.ite_calls, 11);
        assert_eq!(forward.cache_hits, 5);
        assert_eq!(forward.unique_hits, 3);
        assert_eq!(forward.nodes_created, 2);
    }

    #[test]
    fn hit_rate_is_zero_without_lookups() {
        assert_eq!(OpStats::default().cache_hit_rate(), 0.0);
        assert_eq!(TableStats::default().unique_load_factor(), 0.0);
    }
}
