//! Operation counters and table statistics for the [`Manager`].
//!
//! The counters answer the questions the paper's evaluation and the
//! ROADMAP's performance work keep asking: how hard is the computed
//! table working (hit rate), how loaded is the unique table, and how
//! much structure did `restrict`/`ite` actually chew through. They are
//! plain `u64` field increments on paths that already mutate the
//! manager, so they stay on unconditionally; the registry-level `trace`
//! feature only affects the `bds-trace` macros layered on top.

use crate::manager::Manager;

/// Monotonic operation counters accumulated over a [`Manager`]'s
/// lifetime. Obtain a copy via [`Manager::op_stats`] or as part of
/// [`Manager::table_stats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Total `ite` invocations, including internal recursive calls.
    pub ite_calls: u64,
    /// Computed-table lookups that found a memoized result.
    pub cache_hits: u64,
    /// Computed-table lookups that missed and forced a recursion.
    pub cache_misses: u64,
    /// Top-level `restrict` invocations.
    pub restrict_calls: u64,
    /// Unique-table lookups that found an existing node (hash-cons hits).
    pub unique_hits: u64,
    /// Decision nodes freshly created in the arena.
    pub nodes_created: u64,
}

impl OpStats {
    /// Adds `other`'s counts into `self` — used to aggregate over the
    /// several managers a synthesis flow creates and discards.
    pub fn merge(&mut self, other: &OpStats) {
        self.ite_calls += other.ite_calls;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.restrict_calls += other.restrict_calls;
        self.unique_hits += other.unique_hits;
        self.nodes_created += other.nodes_created;
    }

    /// Merges an iterator of per-manager (or per-worker) counter sets
    /// into one total. Addition is commutative, so the result does not
    /// depend on the order worker threads finished in — the property the
    /// sharded flow relies on to keep its reports deterministic.
    #[must_use]
    pub fn merged<'a>(stats: impl IntoIterator<Item = &'a OpStats>) -> OpStats {
        let mut total = OpStats::default();
        for s in stats {
            total.merge(s);
        }
        total
    }

    /// Computed-table hit rate in `[0, 1]`, or 0.0 before any lookup.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            // Counter magnitudes sit far below f64's exact-integer range.
            #[allow(clippy::cast_precision_loss)]
            {
                self.cache_hits as f64 / total as f64
            }
        }
    }
}

impl std::iter::Sum for OpStats {
    fn sum<I: Iterator<Item = OpStats>>(iter: I) -> Self {
        let mut total = OpStats::default();
        for s in iter {
            total.merge(&s);
        }
        total
    }
}

impl<'a> std::iter::Sum<&'a OpStats> for OpStats {
    fn sum<I: Iterator<Item = &'a OpStats>>(iter: I) -> Self {
        OpStats::merged(iter)
    }
}

/// A point-in-time snapshot of a [`Manager`]'s tables, returned by
/// [`Manager::table_stats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Live nodes in the arena, including the terminal.
    pub arena_nodes: usize,
    /// Entries in the unique (hash-cons) table.
    pub unique_entries: usize,
    /// Allocated capacity of the unique table.
    pub unique_capacity: usize,
    /// Entries in the ITE computed table.
    pub computed_entries: usize,
    /// Allocated capacity of the computed table.
    pub computed_capacity: usize,
    /// Operation counters accumulated since the manager was created.
    pub ops: OpStats,
}

impl TableStats {
    /// Unique-table load factor `entries / capacity` in `[0, 1]`, or 0.0
    /// while the table is unallocated.
    #[must_use]
    pub fn unique_load_factor(&self) -> f64 {
        if self.unique_capacity == 0 {
            0.0
        } else {
            // Table sizes sit far below f64's exact-integer range.
            #[allow(clippy::cast_precision_loss)]
            {
                self.unique_entries as f64 / self.unique_capacity as f64
            }
        }
    }

    /// Computed-table hit rate in `[0, 1]` (see [`OpStats::cache_hit_rate`]).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        self.ops.cache_hit_rate()
    }
}

impl Manager {
    /// Snapshots the sizes and load of the unique and computed tables
    /// together with the lifetime operation counters.
    #[must_use]
    pub fn table_stats(&self) -> TableStats {
        TableStats {
            arena_nodes: self.nodes.len(),
            unique_entries: self.unique.len(),
            unique_capacity: self.unique.capacity(),
            computed_entries: self.ite_cache.len(),
            computed_capacity: self.ite_cache.capacity(),
            ops: self.ops,
        }
    }

    /// Copies the lifetime operation counters.
    #[must_use]
    pub fn op_stats(&self) -> OpStats {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_ite_and_tables() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let b = m.new_var("b");
        let la = m.literal(a, true);
        let lb = m.literal(b, true);
        let and1 = m.and(la, lb).unwrap();
        let before = m.table_stats();
        assert!(before.ops.ite_calls >= 1);
        assert!(before.ops.cache_misses >= 1);
        assert!(before.ops.nodes_created >= 3); // two literals + the AND node
        assert_eq!(before.arena_nodes, m.arena_size());
        assert_eq!(before.unique_entries, before.arena_nodes - 1);
        assert!(before.unique_capacity >= before.unique_entries);

        // The symmetric call normalizes to the same computed-table key.
        let and2 = m.and(lb, la).unwrap();
        assert_eq!(and1, and2);
        let after = m.table_stats();
        assert!(after.ops.cache_hits > before.ops.cache_hits);
        assert!(after.cache_hit_rate() > 0.0);
        assert!(after.unique_load_factor() > 0.0 && after.unique_load_factor() <= 1.0);
    }

    #[test]
    fn merge_sums_every_field() {
        let mut a = OpStats {
            ite_calls: 1,
            cache_hits: 2,
            cache_misses: 3,
            restrict_calls: 4,
            unique_hits: 5,
            nodes_created: 6,
        };
        let b = OpStats {
            ite_calls: 10,
            cache_hits: 20,
            cache_misses: 30,
            restrict_calls: 40,
            unique_hits: 50,
            nodes_created: 60,
        };
        a.merge(&b);
        assert_eq!(
            a,
            OpStats {
                ite_calls: 11,
                cache_hits: 22,
                cache_misses: 33,
                restrict_calls: 44,
                unique_hits: 55,
                nodes_created: 66,
            }
        );
    }

    #[test]
    fn sum_and_merged_aggregate_in_any_order() {
        let parts = [
            OpStats {
                ite_calls: 1,
                nodes_created: 2,
                ..OpStats::default()
            },
            OpStats {
                ite_calls: 10,
                cache_hits: 5,
                ..OpStats::default()
            },
            OpStats {
                unique_hits: 3,
                ..OpStats::default()
            },
        ];
        let forward: OpStats = parts.iter().sum();
        let backward: OpStats = parts.iter().rev().copied().sum();
        assert_eq!(forward, backward);
        assert_eq!(forward, OpStats::merged(&parts));
        assert_eq!(forward.ite_calls, 11);
        assert_eq!(forward.cache_hits, 5);
        assert_eq!(forward.unique_hits, 3);
        assert_eq!(forward.nodes_created, 2);
    }

    #[test]
    fn hit_rate_is_zero_without_lookups() {
        assert_eq!(OpStats::default().cache_hit_rate(), 0.0);
        assert_eq!(TableStats::default().unique_load_factor(), 0.0);
    }
}
