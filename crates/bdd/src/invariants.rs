//! Structural invariant auditing for the ROBDD package.
//!
//! Every mutating pass of the BDS flow — reordering, restrict, transfer,
//! eliminate — relies on the manager staying a *canonical* ROBDD forest.
//! The canonical-form rules are documented on the [crate root](crate);
//! this module turns them into an executable specification:
//!
//! 1. the unique table holds no duplicate `(level, high, low)` triples and
//!    mirrors the arena exactly (hash-consing soundness),
//! 2. the then/1-edge of a node is never complemented,
//! 3. child levels are strictly greater than their parent's level
//!    (ordering monotonicity),
//! 4. no edge indexes past the arena,
//! 5. computed-table (ITE cache) entries reference live nodes only,
//! 6. the variable/level permutation tables are mutual inverses,
//! 7. no node has identical then/else children,
//! 8. the GC root registry references arena nodes with positive counts.
//!
//! [`Manager::check_invariants`] always performs the full audit;
//! [`Manager::audit`] is the cheap gate the flow calls at phase
//! boundaries — a no-op unless [`STRICT_CHECKS`] is enabled
//! (`debug_assertions` or the `strict-checks` feature).

use std::collections::HashMap;

use crate::edge::Edge;
use crate::error::BddError;
use crate::manager::{Manager, TERMINAL_LEVEL};
use crate::Result;

/// True when structural auditing is compiled in: debug builds, or any
/// build with the `strict-checks` feature.
pub const STRICT_CHECKS: bool = cfg!(any(debug_assertions, feature = "strict-checks"));

impl Manager {
    /// Runs the full structural audit unconditionally.
    ///
    /// The audit is `O(arena + caches)` and allocates a scratch map, so
    /// the synthesis flow calls it through [`Manager::audit`] instead,
    /// which compiles to nothing in unchecked release builds.
    ///
    /// # Errors
    /// [`BddError::InvariantViolation`] naming the first broken invariant.
    pub fn check_invariants(&self) -> Result<()> {
        let n = self.nodes.len();
        if n == 0 {
            return violation("arena is empty: terminal node missing".into());
        }
        if self.nodes[0].level != TERMINAL_LEVEL {
            return violation(format!(
                "terminal node has level {} instead of the terminal sentinel",
                self.nodes[0].level
            ));
        }

        // Variable bookkeeping: level_of_var and var_at_level must be
        // mutually inverse permutations over the declared variables.
        let vars = self.var_names.len();
        if self.level_of_var.len() != vars || self.var_at_level.len() != vars {
            return violation(format!(
                "order tables cover {}/{} entries for {vars} variables",
                self.level_of_var.len(),
                self.var_at_level.len()
            ));
        }
        for (var, &lvl) in self.level_of_var.iter().enumerate() {
            if lvl as usize >= vars || self.var_at_level[lvl as usize] as usize != var {
                return violation(format!(
                    "order tables disagree: level_of_var[{var}] = {lvl} but \
                     var_at_level does not map it back"
                ));
            }
        }

        // Decision nodes: canonical-form rules over the whole arena.
        let mut seen: HashMap<(u32, Edge, Edge), usize> = HashMap::with_capacity(n);
        for (idx, node) in self.nodes.iter().enumerate().skip(1) {
            if node.level as usize >= vars {
                return violation(format!(
                    "node {idx} is labelled with level {} but only {vars} variables exist",
                    node.level
                ));
            }
            if node.high.is_complemented() {
                return violation(format!(
                    "node {idx} has a complemented then-edge {:?}",
                    node.high
                ));
            }
            if node.high == node.low {
                return violation(format!(
                    "node {idx} has identical then/else children {:?}",
                    node.high
                ));
            }
            for (which, e) in [("then", node.high), ("else", node.low)] {
                if e.node() as usize >= n {
                    return violation(format!(
                        "node {idx} {which}-edge indexes node {} past the arena of {n}",
                        e.node()
                    ));
                }
                let child_level = self.nodes[e.node() as usize].level;
                if child_level <= node.level {
                    return violation(format!(
                        "ordering violated: node {idx} at level {} has a {which}-child \
                         at level {child_level}",
                        node.level
                    ));
                }
            }
            if let Some(dup) = seen.insert((node.level, node.high, node.low), idx) {
                return violation(format!(
                    "duplicate unique-table triple: nodes {dup} and {idx} both encode \
                     (level {}, {:?}, {:?})",
                    node.level, node.high, node.low
                ));
            }
        }

        // Unique table mirrors the arena exactly.
        if self.unique.len() != n - 1 {
            return violation(format!(
                "unique table holds {} entries for {} decision nodes",
                self.unique.len(),
                n - 1
            ));
        }
        for (key, &idx) in &self.unique {
            let (level, high, low) = key.unpack();
            if idx as usize >= n {
                return violation(format!(
                    "unique table maps a triple to node {idx} past the arena of {n}"
                ));
            }
            let node = &self.nodes[idx as usize];
            if (node.level, node.high, node.low) != (level, high, low) {
                return violation(format!(
                    "unique table entry for node {idx} disagrees with the arena: \
                     table says (level {level}, {high:?}, {low:?}), arena says \
                     (level {}, {:?}, {:?})",
                    node.level, node.high, node.low
                ));
            }
        }

        // Computed table references live nodes only.
        for (key, &r) in &self.ite_cache {
            let (f, g, h) = key.unpack();
            for (role, e) in [("f", f), ("g", g), ("h", h), ("result", r)] {
                if e.node() as usize >= n {
                    return violation(format!(
                        "computed-table {role} edge references node {} past the arena of {n}",
                        e.node()
                    ));
                }
            }
        }

        // GC root registry: in-arena node indices, positive refcounts.
        for (&idx, &count) in &self.roots {
            if idx as usize >= n {
                return violation(format!(
                    "root registry pins node {idx} past the arena of {n}"
                ));
            }
            if count == 0 {
                return violation(format!(
                    "root registry holds node {idx} with a zero reference count"
                ));
            }
        }
        Ok(())
    }

    /// Phase-boundary audit gate: runs [`Manager::check_invariants`] when
    /// [`STRICT_CHECKS`] is enabled, otherwise does nothing.
    ///
    /// # Errors
    /// [`BddError::InvariantViolation`] when auditing is on and an
    /// invariant is broken.
    #[inline]
    pub fn audit(&self) -> Result<()> {
        if STRICT_CHECKS {
            self.check_invariants()
        } else {
            Ok(())
        }
    }
}

fn violation(detail: String) -> Result<()> {
    Err(BddError::InvariantViolation { detail })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Node;
    use crate::nid::{IteKey, UniqueKey};

    fn sample_manager() -> Manager {
        let mut m = Manager::new();
        let vars = m.new_vars(4);
        let la = m.literal(vars[0], true);
        let lb = m.literal(vars[1], true);
        let lc = m.literal(vars[2], true);
        let ab = m.and(la, lb).unwrap();
        let f = m.xor(ab, lc).unwrap();
        let _ = m.or(f, la).unwrap();
        m
    }

    #[test]
    fn healthy_manager_passes() {
        let m = sample_manager();
        m.check_invariants().unwrap();
        m.audit().unwrap();
    }

    #[test]
    fn empty_manager_passes() {
        Manager::new().check_invariants().unwrap();
    }

    #[test]
    fn complemented_then_edge_detected() {
        let mut m = sample_manager();
        let idx = m.nodes.len() - 1;
        let key = {
            let node = &m.nodes[idx];
            UniqueKey::pack(node.level, node.high, node.low)
        };
        m.unique.remove(&key);
        m.nodes[idx].high = m.nodes[idx].high.complement();
        let node = &m.nodes[idx];
        m.unique
            .insert(UniqueKey::pack(node.level, node.high, node.low), idx as u32);
        let err = m.check_invariants().unwrap_err();
        assert!(err.to_string().contains("complemented then-edge"), "{err}");
    }

    #[test]
    fn duplicate_triple_detected() {
        let mut m = sample_manager();
        let copy = m.nodes[1];
        m.nodes.push(copy);
        // Keep counts consistent so the duplicate itself is what trips.
        m.unique.insert(
            UniqueKey::pack(copy.level, Edge::ZERO, copy.low),
            m.nodes.len() as u32,
        );
        let err = m.check_invariants().unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn ordering_violation_detected() {
        let mut m = sample_manager();
        // Find a node whose child is a decision node and invert levels.
        let idx = (1..m.nodes.len())
            .find(|&i| !m.nodes[i].low.is_const() || !m.nodes[i].high.is_const())
            .expect("sample has internal edges");
        m.nodes[idx].level = u32::MAX - 1;
        let err = m.check_invariants().unwrap_err();
        assert!(
            err.to_string().contains("level") || err.to_string().contains("ordering"),
            "{err}"
        );
    }

    #[test]
    fn dangling_edge_detected() {
        let mut m = sample_manager();
        let bogus = Edge::new(10_000, false);
        let idx = m.nodes.len() - 1;
        let key = {
            let node = &m.nodes[idx];
            UniqueKey::pack(node.level, node.high, node.low)
        };
        m.unique.remove(&key);
        m.nodes[idx].low = bogus;
        let node = &m.nodes[idx];
        m.unique
            .insert(UniqueKey::pack(node.level, node.high, node.low), idx as u32);
        let err = m.check_invariants().unwrap_err();
        assert!(err.to_string().contains("past the arena"), "{err}");
    }

    #[test]
    fn stale_computed_table_detected() {
        let mut m = sample_manager();
        let bogus = Edge::new(9_999, false);
        m.ite_cache
            .insert(IteKey::pack(bogus, Edge::ONE, Edge::ZERO), Edge::ONE);
        let err = m.check_invariants().unwrap_err();
        assert!(err.to_string().contains("computed-table"), "{err}");
    }

    #[test]
    fn unique_table_desync_detected() {
        let mut m = sample_manager();
        m.unique
            .insert(UniqueKey::pack(0, Edge::ONE, Edge::ZERO), 0);
        // Either the count or the content check must fire.
        assert!(m.check_invariants().is_err());
    }

    #[test]
    fn broken_order_tables_detected() {
        let mut m = sample_manager();
        m.level_of_var.swap(0, 1);
        let err = m.check_invariants().unwrap_err();
        assert!(err.to_string().contains("order tables"), "{err}");
    }

    #[test]
    fn terminal_corruption_detected() {
        let mut m = sample_manager();
        m.nodes[0].level = 3;
        let err = m.check_invariants().unwrap_err();
        assert!(err.to_string().contains("terminal"), "{err}");
    }

    #[test]
    fn node_wrapper_is_copy() {
        let n = Node {
            level: 0,
            high: Edge::ONE,
            low: Edge::ZERO,
        };
        let _m = n;
        let _n2 = n;
    }
}
