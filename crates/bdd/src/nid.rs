//! Packed table keys over 32-bit node ids.
//!
//! An [`Edge`] is already a bex-style packed *nid*: a `u32` whose low
//! bit is the complement attribute and whose upper 31 bits index the
//! node arena, with the constants inlined as node 0 (`ONE` = raw 0,
//! `ZERO` = raw 1). This module extends that packing to the hash-table
//! keys built *from* nids:
//!
//! * the unique table's `(level, high, low)` triple, and
//! * the computed table's `(f, g, h)` triple,
//!
//! each packed into one `u128` word. A packed key hashes in exactly two
//! folding rounds of [`crate::hash::FastHasher`] (versus a per-field
//! walk over a 3-tuple), compares for equality as one wide integer, and
//! keeps the key representation `Copy` and branch-free to build.
//!
//! Bit layout (low to high):
//!
//! ```text
//! UniqueKey: | low.raw(): 32 | high.raw(): 32 | level: 32 | unused: 32 |
//! IteKey:    | h.raw():   32 | g.raw():    32 | f.raw(): 32 | unused: 32 |
//! ```
//!
//! The upper 32 bits are always zero; they cost nothing (the key lives
//! in one SSE-width slot either way) and leave headroom for tagging if
//! a future cache wants to share one table across operators.

use crate::edge::Edge;

/// Packed unique-table key: `(level, high, low)` in one `u128`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct UniqueKey(u128);

impl UniqueKey {
    /// Packs a canonical node triple. `high` must be regular (the
    /// canonical-form invariant) but the packing itself is total.
    #[inline]
    pub fn pack(level: u32, high: Edge, low: Edge) -> Self {
        UniqueKey(
            u128::from(low.raw()) | (u128::from(high.raw()) << 32) | (u128::from(level) << 64),
        )
    }

    /// Recovers `(level, high, low)` — used by the invariant auditor
    /// and the chain-length model, never on the hot path.
    #[inline]
    pub fn unpack(self) -> (u32, Edge, Edge) {
        (
            (self.0 >> 64) as u32,
            Edge((self.0 >> 32) as u32),
            Edge(self.0 as u32),
        )
    }

    /// The raw packed word (for hashing models).
    #[inline]
    pub fn raw(self) -> u128 {
        self.0
    }
}

/// Packed computed-table key: a canonical ITE triple `(f, g, h)` in one
/// `u128`. Keys are built only from triples already normalized by
/// [`Manager::canonicalize_ite`](crate::Manager::canonicalize_ite), so
/// structurally equal queries pack to bit-equal keys.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct IteKey(u128);

impl IteKey {
    /// Packs a canonical `(f, g, h)` triple.
    #[inline]
    pub fn pack(f: Edge, g: Edge, h: Edge) -> Self {
        IteKey(u128::from(h.raw()) | (u128::from(g.raw()) << 32) | (u128::from(f.raw()) << 64))
    }

    /// Recovers `(f, g, h)` — auditor-only.
    #[inline]
    pub fn unpack(self) -> (Edge, Edge, Edge) {
        (
            Edge((self.0 >> 64) as u32),
            Edge((self.0 >> 32) as u32),
            Edge(self.0 as u32),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_key_round_trips() {
        for (level, high, low) in [
            (0u32, Edge::ONE, Edge::ZERO),
            (7, Edge::new(3, false), Edge::new(9, true)),
            (u32::MAX - 1, Edge::new((1 << 30) - 1, false), Edge::ZERO),
        ] {
            let k = UniqueKey::pack(level, high, low);
            assert_eq!(k.unpack(), (level, high, low));
        }
    }

    #[test]
    fn ite_key_round_trips() {
        let (f, g, h) = (Edge::new(5, false), Edge::new(6, false), Edge::new(7, true));
        assert_eq!(IteKey::pack(f, g, h).unpack(), (f, g, h));
    }

    #[test]
    fn distinct_triples_pack_distinctly() {
        let a = IteKey::pack(
            Edge::new(1, false),
            Edge::new(2, false),
            Edge::new(3, false),
        );
        let b = IteKey::pack(
            Edge::new(3, false),
            Edge::new(2, false),
            Edge::new(1, false),
        );
        let c = IteKey::pack(Edge::new(1, true), Edge::new(2, false), Edge::new(3, false));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn upper_bits_stay_clear() {
        let k = UniqueKey::pack(u32::MAX, Edge(u32::MAX), Edge(u32::MAX));
        assert_eq!(k.raw() >> 96, 0);
    }
}
