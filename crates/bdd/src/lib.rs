//! Reduced ordered binary decision diagrams with complement edges.
//!
//! This crate is the foundational substrate of the BDS reproduction: a
//! self-contained ROBDD package in the style of Brace–Rudell–Bryant
//! (`Efficient implementation of a BDD package`, DAC 1990), providing
//! everything the decomposition engine in the `bds` crate needs:
//!
//! * canonical ROBDDs with **complement edges** (only the else/0-edge may be
//!   complemented, matching the convention in the BDS paper §II-A),
//! * the `ITE` operator with a computed table, plus the derived Boolean
//!   connectives ([`Manager::and`], [`Manager::or`], [`Manager::xor`], …),
//! * cofactors, variable composition and existential/universal
//!   quantification,
//! * the **Coudert–Madre `restrict`** operator used by BDS for
//!   don't-care minimization during Boolean division (paper §III-B),
//! * Minato–Morreale **ISOP** extraction (irredundant sum-of-products) used
//!   when factoring-tree leaves are emitted as network nodes,
//! * structural queries (node counts, support, path counts, satisfy counts)
//!   that the dominator/cut analyses of the decomposition engine build on,
//! * **cross-manager transfer** — the paper's "BDD mapping" / `bddPool`
//!   mechanism (§IV-B) that re-homes BDDs into a fresh manager with a
//!   compacted variable range,
//! * **variable reordering** by rebuild-based sifting (§IV-C subjects every
//!   BDD to reordering before decomposition),
//! * DOT export for debugging.
//!
//! # Example
//!
//! ```
//! use bds_bdd::Manager;
//!
//! # fn main() -> Result<(), bds_bdd::BddError> {
//! let mut m = Manager::new();
//! let a = m.new_var("a");
//! let b = m.new_var("b");
//! let fa = m.literal(a, true);
//! let fb = m.literal(b, true);
//! let f = m.and(fa, fb)?;        // f = a · b
//! let g = m.or(fa, fb)?;         // g = a + b
//! assert_ne!(f, g);
//! assert_eq!(m.and(f, g)?, f);   // absorption: (a·b)(a+b) = a·b
//! # Ok(())
//! # }
//! ```
//!
//! # Design notes
//!
//! Nodes live in a per-[`Manager`] arena and are identified by compact
//! 32-bit [`Edge`]s carrying a complement bit. The canonical-form invariants
//! are:
//!
//! 1. no node has identical then/else children,
//! 2. the then-edge (1-edge) is never complemented,
//! 3. structurally identical nodes are unique (hash-consed).
//!
//! Node references are bex-style packed *nids*: a 32-bit word holding
//! the arena index, a complement bit, and the constants inlined (see
//! [`Edge`]). The unique and computed tables key on single packed words
//! hashed by an in-tree wyhash/FNV-style function — no `SipHash`, no
//! external dependency — and `ite` queries are reduced to canonical
//! *standard triples* before the computed table is consulted (see the
//! `canon` module docs).
//!
//! Two complementary mechanisms keep long-lived managers clean:
//!
//! * **rebuild into a fresh manager** — the paper's own answer to manager
//!   pollution ("BDD mapping", §IV-B), which [`transfer::transfer`]
//!   implements directly and sifting uses wholesale; and
//! * **root-refcounted garbage collection** — [`Manager::add_root`] /
//!   [`Manager::collect_garbage`] mark-compact the arena in stable
//!   (deterministic) order so long flows stop dragging dead nodes
//!   through reorder and transfer. See the `gc` module docs for the
//!   protocol and its handle-invalidation rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply;
/// Deterministic effort budgets and fault injection.
pub mod budget;
mod canon;
mod cofactor;
mod count;
mod cube;
mod dot;
mod edge;
mod error;
mod gc;
mod hash;
mod invariants;
mod isop;
mod manager;
mod nid;
/// Test-only truth-table reference engine for differential testing.
pub mod oracle;
/// Variable reordering: sifting and window permutation.
pub mod reorder;
mod restrict;
mod satisfy;
mod stats;
/// Cross-manager BDD transfer (rebuild under a new variable order).
pub mod transfer;

pub use budget::Fault;
pub use canon::IteNorm;
pub use cube::Cube;
pub use edge::{Edge, Var};
pub use error::{BddError, OpClass};
pub use gc::GcStats;
pub use invariants::STRICT_CHECKS;
pub use manager::Manager;
pub use stats::{OpStats, TableStats};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BddError>;
