//! The BDD manager: node arena, unique table, variable order.

use crate::edge::{Edge, Var};
use crate::error::BddError;
use crate::hash::FastMap;
use crate::nid::{IteKey, UniqueKey};
use crate::stats::OpStats;
use crate::Result;

/// Level of the terminal node — below every variable.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

#[derive(Copy, Clone, Debug)]
pub(crate) struct Node {
    /// Position of this node's variable in the current order.
    pub level: u32,
    /// Then-child; never complemented (canonical-form invariant).
    pub high: Edge,
    /// Else-child; may be complemented.
    pub low: Edge,
}

/// A BDD manager: owns the node arena, the unique table and the variable
/// order, and provides all Boolean operations.
///
/// Edges ([`Edge`]) are only meaningful with the manager that created them.
/// See the [crate docs](crate) for the canonical-form invariants.
///
/// # Example
///
/// ```
/// use bds_bdd::Manager;
/// # fn main() -> Result<(), bds_bdd::BddError> {
/// let mut m = Manager::new();
/// let x = m.new_var("x");
/// let lx = m.literal(x, true);
/// let f = m.xor(lx, bds_bdd::Edge::ONE)?; // x ⊕ 1 = !x
/// assert_eq!(f, m.literal(x, false));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Manager {
    pub(crate) nodes: Vec<Node>,
    /// Hash-cons table: packed `(level, high, low)` key → node index.
    pub(crate) unique: FastMap<UniqueKey, u32>,
    /// ITE computed table: packed canonical `(f, g, h)` key → result.
    pub(crate) ite_cache: FastMap<IteKey, Edge>,
    /// GC root registry: node index → reference count (see `gc.rs`).
    pub(crate) roots: FastMap<u32, u32>,
    pub(crate) var_names: Vec<String>,
    /// var index -> level.
    pub(crate) level_of_var: Vec<u32>,
    /// level -> var index.
    pub(crate) var_at_level: Vec<u32>,
    node_limit: usize,
    /// Deterministic effort ticks consumed so far (see `budget.rs`).
    pub(crate) effort_spent: u64,
    /// Effort tick ceiling; `u64::MAX` means unbudgeted.
    pub(crate) effort_limit: u64,
    /// Armed fault injection: `(fault, absolute trip tick)`. Fires once.
    pub(crate) armed_fault: Option<(crate::budget::Fault, u64)>,
    /// Lifetime operation counters (see [`crate::TableStats`]).
    pub(crate) ops: OpStats,
}

impl Manager {
    /// Creates an empty manager with no variables and no node limit.
    pub fn new() -> Self {
        Manager::with_node_limit(usize::MAX)
    }

    /// Creates a manager that fails with [`BddError::NodeLimit`] once its
    /// arena would exceed `limit` live nodes.
    ///
    /// This is the back-pressure mechanism used by the `eliminate`
    /// procedure of `bds-network` to abandon collapses that would blow up.
    pub fn with_node_limit(limit: usize) -> Self {
        Manager {
            // nodes[0] is the terminal.
            nodes: vec![Node {
                level: TERMINAL_LEVEL,
                high: Edge::ONE,
                low: Edge::ONE,
            }],
            unique: FastMap::default(),
            ite_cache: FastMap::default(),
            roots: FastMap::default(),
            var_names: Vec::new(),
            level_of_var: Vec::new(),
            var_at_level: Vec::new(),
            node_limit: limit,
            effort_spent: 0,
            effort_limit: u64::MAX,
            armed_fault: None,
            ops: OpStats::default(),
        }
    }

    /// Returns the configured node limit (`usize::MAX` when unlimited).
    pub fn node_limit(&self) -> usize {
        self.node_limit
    }

    /// Changes the node limit. Lowering it below the current arena size
    /// causes the *next* node creation to fail, not this call.
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit;
    }

    /// Total number of nodes ever created in this manager (arena size,
    /// including the terminal). This is the quantity bounded by the node
    /// limit and the natural "memory" proxy for experiments.
    pub fn arena_size(&self) -> usize {
        self.nodes.len()
    }

    /// Appends a fresh variable at the bottom of the order.
    pub fn new_var(&mut self, name: impl Into<String>) -> Var {
        let idx = self.var_names.len() as u32;
        self.var_names.push(name.into());
        self.level_of_var.push(idx);
        self.var_at_level.push(idx);
        Var(idx)
    }

    /// Creates `n` fresh anonymous variables (`x0`, `x1`, …) and returns
    /// their handles in order.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|i| self.new_var(format!("x{i}"))).collect()
    }

    /// Number of variables known to the manager.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// The name given to `var` at creation.
    ///
    /// # Panics
    /// Panics if `var` does not belong to this manager.
    pub fn var_name(&self, var: Var) -> &str {
        &self.var_names[var.index()]
    }

    /// Current level (position in the order, 0 = topmost) of `var`.
    pub fn level_of(&self, var: Var) -> u32 {
        self.level_of_var[var.index()]
    }

    /// The variable currently sitting at `level`.
    pub fn var_at(&self, level: u32) -> Var {
        Var(self.var_at_level[level as usize])
    }

    /// The current variable order, topmost first.
    pub fn order(&self) -> Vec<Var> {
        self.var_at_level.iter().map(|&v| Var(v)).collect()
    }

    /// Replaces the variable order wholesale. Only permitted while the
    /// manager holds no decision nodes (used by `reorder` to preserve
    /// variable identity across a rebuild).
    ///
    /// `order` must be a permutation of all variables; this is the
    /// caller's responsibility (checked upstream in `reorder`).
    pub(crate) fn set_order(&mut self, order: &[Var]) {
        debug_assert_eq!(self.nodes.len(), 1, "set_order requires an empty arena");
        debug_assert_eq!(order.len(), self.var_names.len());
        for (level, &v) in order.iter().enumerate() {
            self.level_of_var[v.index()] = level as u32;
            self.var_at_level[level] = v.index() as u32;
        }
    }

    /// Validates that `var` belongs to this manager.
    pub fn check_var(&self, var: Var) -> Result<()> {
        if var.index() < self.var_names.len() {
            Ok(())
        } else {
            Err(BddError::UnknownVar {
                var: var.index(),
                var_count: self.var_names.len(),
            })
        }
    }

    /// The function of a single literal: `var` when `phase` is true,
    /// `!var` otherwise.
    ///
    /// # Panics
    /// Panics if `var` does not belong to this manager or if the node
    /// limit is exhausted; use [`Manager::literal_checked`] in
    /// limit-sensitive code.
    pub fn literal(&mut self, var: Var, phase: bool) -> Edge {
        self.literal_checked(var, phase)
            // lint:allow(panic) — documented panicking convenience; use literal_checked in limit-sensitive code
            .expect("node limit exhausted while creating a literal")
    }

    /// Fallible variant of [`Manager::literal`].
    ///
    /// # Errors
    /// [`BddError::UnknownVar`] for a foreign variable,
    /// [`BddError::NodeLimit`] when the arena is exhausted.
    pub fn literal_checked(&mut self, var: Var, phase: bool) -> Result<Edge> {
        self.check_var(var)?;
        let level = self.level_of(var);
        let e = self.mk(level, Edge::ONE, Edge::ZERO)?;
        Ok(e.complement_if(!phase))
    }

    /// Constant function for `value`.
    pub fn constant(&self, value: bool) -> Edge {
        if value {
            Edge::ONE
        } else {
            Edge::ZERO
        }
    }

    /// Creates (or finds) the canonical node `(level, high, low)`.
    ///
    /// # Errors
    /// [`BddError::NodeLimit`] when the arena would exceed the limit.
    pub(crate) fn mk(&mut self, level: u32, high: Edge, low: Edge) -> Result<Edge> {
        if high == low {
            return Ok(high);
        }
        // Canonical form: then-edge never complemented.
        if high.is_complemented() {
            let e = self.mk_raw(level, high.complement(), low.complement())?;
            return Ok(e.complement());
        }
        self.mk_raw(level, high, low)
    }

    fn mk_raw(&mut self, level: u32, high: Edge, low: Edge) -> Result<Edge> {
        debug_assert!(!high.is_complemented());
        debug_assert!(level < self.node_level(high) && level < self.node_level(low));
        let key = UniqueKey::pack(level, high, low);
        if let Some(&idx) = self.unique.get(&key) {
            self.ops.unique_hits += 1;
            return Ok(Edge::new(idx, false));
        }
        self.charge(crate::OpClass::UniqueInsert)?;
        if self.nodes.len() >= self.node_limit {
            return Err(BddError::NodeLimit {
                limit: self.node_limit,
            });
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node { level, high, low });
        self.unique.insert(key, idx);
        self.ops.nodes_created += 1;
        Ok(Edge::new(idx, false))
    }

    /// Level of the node referenced by `e` (terminal ⇒ `u32::MAX`).
    #[inline]
    pub(crate) fn node_level(&self, e: Edge) -> u32 {
        self.nodes[e.node() as usize].level
    }

    /// The level of the top variable of `e`, or `u32::MAX` for constants.
    #[inline]
    pub fn top_level(&self, e: Edge) -> u32 {
        self.node_level(e)
    }

    /// The top variable of `e`, or `None` for constants.
    pub fn top_var(&self, e: Edge) -> Option<Var> {
        if e.is_const() {
            None
        } else {
            Some(self.var_at(self.node_level(e)))
        }
    }

    /// Destructures a non-constant edge into `(top_var, then, else)`,
    /// where complementation on `e` has been pushed into the children
    /// (so the returned cofactors are the cofactors *of the function* `e`).
    ///
    /// Returns `None` for constants.
    pub fn node(&self, e: Edge) -> Option<(Var, Edge, Edge)> {
        if e.is_const() {
            return None;
        }
        let n = &self.nodes[e.node() as usize];
        let c = e.is_complemented();
        Some((
            self.var_at(n.level),
            n.high.complement_if(c),
            n.low.complement_if(c),
        ))
    }

    /// Raw structural view of an edge's node without pushing the edge's own
    /// complement bit into the children: `(var, high, low)` as stored.
    ///
    /// This is what structural analyses (dominators, cuts — see the `bds`
    /// crate) need: the *graph*, with complement bits visible on the edges
    /// themselves. Returns `None` for constants.
    pub fn node_raw(&self, e: Edge) -> Option<(Var, Edge, Edge)> {
        if e.is_const() {
            return None;
        }
        let n = &self.nodes[e.node() as usize];
        Some((self.var_at(n.level), n.high, n.low))
    }

    /// Evaluates the function under a total assignment indexed by variable
    /// (`assignment[v.index()]`).
    ///
    /// # Panics
    /// Panics if the assignment is shorter than some variable index
    /// encountered along the path.
    pub fn eval(&self, e: Edge, assignment: &[bool]) -> bool {
        let mut cur = e;
        loop {
            if cur.is_const() {
                return cur.is_one();
            }
            let n = &self.nodes[cur.node() as usize];
            let var = self.var_at_level[n.level as usize] as usize;
            let next = if assignment[var] { n.high } else { n.low };
            cur = next.complement_if(cur.is_complemented());
        }
    }

    /// Drops the operation cache. Mostly useful to bound memory in
    /// long-running synthesis loops.
    pub fn clear_cache(&mut self) {
        self.ite_cache.clear();
    }
}

impl Default for Manager {
    fn default() -> Self {
        Manager::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_is_node_zero() {
        let m = Manager::new();
        assert_eq!(m.arena_size(), 1);
        assert!(Edge::ONE.is_const());
        assert_eq!(m.top_var(Edge::ONE), None);
    }

    #[test]
    fn literal_round_trip() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let pos = m.literal(a, true);
        let neg = m.literal(a, false);
        assert_eq!(pos.complement(), neg);
        assert!(m.eval(pos, &[true]));
        assert!(!m.eval(pos, &[false]));
        assert!(m.eval(neg, &[false]));
    }

    #[test]
    fn mk_is_hash_consed() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let l1 = m.literal(a, true);
        let l2 = m.literal(a, true);
        assert_eq!(l1, l2);
        assert_eq!(m.arena_size(), 2);
    }

    #[test]
    fn node_pushes_complement_into_children() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let pos = m.literal(a, true);
        let neg = pos.complement();
        let (_, h, l) = m.node(pos).unwrap();
        assert_eq!((h, l), (Edge::ONE, Edge::ZERO));
        let (_, h, l) = m.node(neg).unwrap();
        assert_eq!((h, l), (Edge::ZERO, Edge::ONE));
    }

    #[test]
    fn node_limit_enforced() {
        // Room for terminal + two literal nodes, but not for the AND node.
        let mut m = Manager::with_node_limit(3);
        let a = m.new_var("a");
        let b = m.new_var("b");
        let la = m.literal(a, true);
        let lb = m.literal(b, true);
        assert_eq!(m.arena_size(), 3);
        let r = m.and(la, lb);
        assert_eq!(r, Err(BddError::NodeLimit { limit: 3 }));
    }

    #[test]
    fn var_bookkeeping() {
        let mut m = Manager::new();
        let a = m.new_var("alpha");
        let b = m.new_var("beta");
        assert_eq!(m.var_count(), 2);
        assert_eq!(m.var_name(a), "alpha");
        assert_eq!(m.level_of(b), 1);
        assert_eq!(m.var_at(0), a);
        assert_eq!(m.order(), vec![a, b]);
        assert!(m.check_var(a).is_ok());
        assert!(m.check_var(Var::from_index(9)).is_err());
    }
}
