//! Workspace automation (`cargo xtask`).
//!
//! Three subcommands:
//!
//! * `cargo xtask lint` — custom static checks that `rustc`/`clippy` do
//!   not cover for this workspace:
//!   1. no `unwrap()`/`expect()`/`panic!()`/`unreachable!()`/`todo!()`/
//!      `unimplemented!()` in **library** code (test modules, `tests/`,
//!      `benches/`, `examples/` and `src/bin/` are exempt) unless the
//!      line or its predecessor carries a `// lint:allow(panic)`
//!      justification,
//!   2. every crate root declares `#![forbid(unsafe_code)]`,
//!   3. no `println!`/`eprintln!`/`print!`/`eprint!` in library code
//!      (escape hatch: `// lint:allow(print)`),
//!   4. public items in `bds-bdd`, `bds-network` and `bds-trace` carry
//!      doc comments,
//!   5. no direct `Instant::now()` or `SystemTime::now()` outside
//!      `bds-trace` and `bds-bench` — instrumented crates time through
//!      `bds_trace::Stopwatch`/`span!` so wall-clock reads stay
//!      observable (escape hatch: `// lint:allow(instant)`).
//!
//!   Violations are reported as `path:line: [rule] message` and the
//!   process exits nonzero.
//!
//! * `cargo xtask ci` — the full local gate: `cargo fmt --check`, then
//!   `cargo clippy --workspace --all-targets -- -D warnings`, then the
//!   custom lints above, then `cargo test --workspace`, then a build and
//!   test pass with the `trace` feature on (`--features bds-bench/trace`)
//!   so the instrumented configuration cannot rot.
//!
//! * `cargo xtask perfgate` — the perf-regression gate: runs the
//!   trace-enabled `table1` bench (or takes a pre-generated report via
//!   `--fresh <path>`), compares it against the checked-in baseline
//!   (`results/BENCH_flow.json`, override with `--baseline <path>`)
//!   through [`bds_trace::gate::compare_reports`], and exits nonzero on
//!   any regression — structural counts are exact, wall time gets a
//!   noise allowance. `--jobs <n>` runs the fresh `table1` with the
//!   sharded flow; the structural comparison against the sequential
//!   baseline stays exact because sharding is a pure scheduling change
//!   (only wall time may differ between thread counts). Zero matched circuits is also a failure: a gate
//!   that compares nothing protects nothing. The fresh report is left at
//!   `target/perfgate/fresh.json` so CI can upload it as an artifact.
//!
//! A file-level escape hatch `// lint:allow-file(<rule>): <reason>`
//! anywhere in a file disables one rule for that whole file.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some("ci") => run_ci(),
        Some("perfgate") => run_perfgate(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask <lint|ci|perfgate>");
            eprintln!("  lint      run the custom workspace lints");
            eprintln!("  ci        fmt --check, clippy -D warnings, custom lints, tests");
            eprintln!("  perfgate  gate a fresh table1 run against the checked-in baseline");
            eprintln!("            [--baseline <report.json>] [--fresh <report.json>]");
            ExitCode::from(2)
        }
    }
}

fn workspace_root() -> PathBuf {
    // crates/xtask → workspace root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

// ---------------------------------------------------------------------------
// `cargo xtask ci`
// ---------------------------------------------------------------------------

fn run_ci() -> ExitCode {
    let root = workspace_root();
    let steps: [(&str, &[&str]); 5] = [
        ("cargo fmt --check", &["fmt", "--all", "--", "--check"]),
        (
            "cargo clippy -D warnings",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
        ),
        // The remaining steps run after the custom lints below.
        ("cargo test", &["test", "--workspace", "--quiet"]),
        (
            "cargo build (trace)",
            &["build", "--workspace", "--features", "bds-bench/trace"],
        ),
        (
            "cargo test (trace)",
            &[
                "test",
                "--workspace",
                "--features",
                "bds-bench/trace",
                "--quiet",
            ],
        ),
    ];
    let mut failed = Vec::new();
    for (label, cmd_args) in &steps[..2] {
        println!("==> {label}");
        if !run_cargo(&root, cmd_args) {
            failed.push(*label);
        }
    }
    println!("==> cargo xtask lint");
    if run_lint() != ExitCode::SUCCESS {
        failed.push("cargo xtask lint");
    }
    for (label, cmd_args) in &steps[2..] {
        println!("==> {label}");
        if !run_cargo(&root, cmd_args) {
            failed.push(*label);
        }
    }
    if failed.is_empty() {
        println!("ci: all gates passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("ci: FAILED gates: {}", failed.join(", "));
        ExitCode::FAILURE
    }
}

fn run_cargo(root: &Path, args: &[&str]) -> bool {
    match Command::new("cargo").args(args).current_dir(root).status() {
        Ok(status) => status.success(),
        Err(err) => {
            eprintln!("failed to spawn cargo {}: {err}", args.join(" "));
            false
        }
    }
}

// ---------------------------------------------------------------------------
// `cargo xtask perfgate`
// ---------------------------------------------------------------------------

/// Where `perfgate` leaves the freshly generated report (relative to the
/// workspace root) so CI can pick it up as an artifact.
const FRESH_REPORT: &str = "target/perfgate/fresh.json";

/// Default baseline: the checked-in trace-enabled `table1` report.
const BASELINE_REPORT: &str = "results/BENCH_flow.json";

fn run_perfgate(args: &[String]) -> ExitCode {
    let root = workspace_root();
    let mut baseline = root.join(BASELINE_REPORT);
    let mut fresh: Option<PathBuf> = None;
    let mut jobs: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(p) => baseline = PathBuf::from(p),
                None => return perfgate_usage("--baseline needs a path"),
            },
            "--fresh" => match it.next() {
                Some(p) => fresh = Some(PathBuf::from(p)),
                None => return perfgate_usage("--fresh needs a path"),
            },
            "--jobs" => match it.next().and_then(|v| v.trim().parse::<usize>().ok()) {
                Some(n) => jobs = Some(n.to_string()),
                None => return perfgate_usage("--jobs needs a count"),
            },
            other => return perfgate_usage(&format!("unknown flag {other}")),
        }
    }
    if jobs.is_some() && fresh.is_some() {
        return perfgate_usage("--jobs only applies when perfgate runs table1 itself");
    }

    let fresh = match fresh {
        Some(path) => path,
        None => {
            // Regenerate: a release table1 run with tracing on, writing
            // the same report the baseline was produced from.
            let out = root.join(FRESH_REPORT);
            println!(
                "perfgate: running trace-enabled table1 (jobs={}) -> {}",
                jobs.as_deref().unwrap_or("default"),
                out.display()
            );
            let mut cargo_args = vec![
                "run",
                "--release",
                "--features",
                "trace",
                "--bin",
                "table1",
                "--",
                "--json",
                FRESH_REPORT,
            ];
            if let Some(n) = &jobs {
                cargo_args.push("--jobs");
                cargo_args.push(n);
            }
            if !run_cargo(&root, &cargo_args) {
                eprintln!("perfgate: table1 run failed");
                return ExitCode::FAILURE;
            }
            out
        }
    };

    let baseline_doc = match load_report(&baseline) {
        Ok(doc) => doc,
        Err(err) => {
            eprintln!(
                "perfgate: cannot load baseline {}: {err}",
                baseline.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let fresh_doc = match load_report(&fresh) {
        Ok(doc) => doc,
        Err(err) => {
            eprintln!(
                "perfgate: cannot load fresh report {}: {err}",
                fresh.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let thresholds = bds_trace::gate::Thresholds::default();
    let outcome = match bds_trace::gate::compare_reports(&baseline_doc, &fresh_doc, &thresholds) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("perfgate: {err}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", outcome.render());
    if outcome.matched == 0 {
        eprintln!(
            "perfgate: no circuits in common between {} and {} — refusing to pass an empty gate",
            baseline.display(),
            fresh.display()
        );
        return ExitCode::FAILURE;
    }
    if outcome.passed() {
        println!("perfgate: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("perfgate: FAILED");
        ExitCode::FAILURE
    }
}

fn load_report(path: &Path) -> Result<bds_trace::json::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    bds_trace::json::parse(&text).map_err(|e| e.to_string())
}

fn perfgate_usage(problem: &str) -> ExitCode {
    eprintln!("perfgate: {problem}");
    eprintln!(
        "usage: cargo xtask perfgate [--baseline <report.json>] [--fresh <report.json>] \
         [--jobs <n>]"
    );
    ExitCode::from(2)
}

// ---------------------------------------------------------------------------
// `cargo xtask lint`
// ---------------------------------------------------------------------------

/// One reported violation.
struct Violation {
    path: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let mut violations = Vec::new();
    let mut checked = 0usize;
    for file in collect_rust_files(&root) {
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue;
        };
        let rel = file.strip_prefix(&root).unwrap_or(&file).to_path_buf();
        checked += 1;
        lint_file(&rel, &text, &mut violations);
    }
    // Crate-root rule runs on the roots regardless of library status.
    for crate_root in collect_crate_roots(&root) {
        let Ok(text) = std::fs::read_to_string(&crate_root) else {
            continue;
        };
        let rel = crate_root
            .strip_prefix(&root)
            .unwrap_or(&crate_root)
            .to_path_buf();
        if !text.contains("#![forbid(unsafe_code)]") {
            violations.push(Violation {
                path: rel,
                line: 1,
                rule: "forbid-unsafe",
                message: "crate root must declare #![forbid(unsafe_code)]".to_string(),
            });
        }
    }
    violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    for v in &violations {
        println!(
            "{}:{}: [{}] {}",
            v.path.display(),
            v.line,
            v.rule,
            v.message
        );
    }
    if violations.is_empty() {
        println!("lint: {checked} library files clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("lint: {} violation(s) in {checked} files", violations.len());
        ExitCode::FAILURE
    }
}

/// Library sources: every `crates/*/src/**/*.rs` (minus `src/bin/`) plus
/// the root package's `src/`. `tests/`, `benches/`, `examples/` and the
/// xtask crate itself are not library code.
fn collect_rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            let dir = entry.path();
            if dir.file_name().is_some_and(|n| n == "xtask") {
                continue;
            }
            walk(&dir.join("src"), &mut out);
        }
    }
    walk(&root.join("src"), &mut out);
    out.retain(|p| {
        !p.components().any(|c| {
            let c = c.as_os_str();
            c == "bin" || c == "tests" || c == "benches" || c == "examples"
        })
    });
    out.sort();
    out
}

fn collect_crate_roots(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![
        root.join("src/lib.rs"),
        root.join("crates/xtask/src/main.rs"),
    ];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let lib = entry.path().join("src/lib.rs");
            if lib.is_file() {
                out.push(lib);
            }
        }
    }
    out.sort();
    out.retain(|p| p.is_file());
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The panic-family tokens banned from library code. `assert!` and
/// `debug_assert!` remain allowed: stating invariants is encouraged.
const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

const PRINT_TOKENS: [&str; 4] = ["println!(", "eprintln!(", "print!(", "eprint!("];

/// Direct wall-clock reads banned from instrumented crates: timing goes
/// through `bds_trace::Stopwatch` / `span!` so it shows up in reports.
/// `bds-trace` implements those primitives and `bds-bench` owns the
/// micro-benchmark runner, so both are exempt. `SystemTime` is on the
/// list for the same reason (plus it is non-monotonic, so it is wrong
/// for durations anyway).
const INSTANT_TOKENS: [&str; 2] = ["Instant::now(", "SystemTime::now("];

fn instant_exempt(rel: &Path) -> bool {
    let s = rel.to_string_lossy().replace('\\', "/");
    s.starts_with("crates/trace/") || s.starts_with("crates/bench/")
}

fn lint_file(rel: &Path, text: &str, violations: &mut Vec<Violation>) {
    let raw_lines: Vec<&str> = text.lines().collect();
    let cleaned = clean_lines(&raw_lines);
    let in_test = test_regions(&raw_lines, &cleaned);
    let allow_file_panic = text.contains("lint:allow-file(panic)");
    let allow_file_print = text.contains("lint:allow-file(print)");
    let allow_file_docs = text.contains("lint:allow-file(docs)");
    let allow_file_instant = text.contains("lint:allow-file(instant)");
    let is_docs_crate = {
        let s = rel.to_string_lossy().replace('\\', "/");
        s.starts_with("crates/bdd/")
            || s.starts_with("crates/network/")
            || s.starts_with("crates/trace/")
    };
    let instant_applies = !instant_exempt(rel);

    let allowed = |idx: usize, rule: &str| -> bool {
        let marker = format!("lint:allow({rule})");
        raw_lines[idx].contains(&marker) || (idx > 0 && raw_lines[idx - 1].contains(&marker))
    };

    for (idx, clean) in cleaned.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let line_no = idx + 1;
        if !allow_file_panic {
            for tok in PANIC_TOKENS {
                if contains_token(clean, tok) && !allowed(idx, "panic") {
                    violations.push(Violation {
                        path: rel.to_path_buf(),
                        line: line_no,
                        rule: "panic",
                        message: format!(
                            "`{}` in library code; return an error or justify with \
                             `// lint:allow(panic)`",
                            tok.trim_start_matches('.')
                        ),
                    });
                }
            }
        }
        if !allow_file_print {
            for tok in PRINT_TOKENS {
                if contains_token(clean, tok) && !allowed(idx, "print") {
                    violations.push(Violation {
                        path: rel.to_path_buf(),
                        line: line_no,
                        rule: "print",
                        message: format!(
                            "`{}` in library code; return data instead or justify with \
                             `// lint:allow(print)`",
                            tok.trim_end_matches('(')
                        ),
                    });
                }
            }
        }
        if instant_applies && !allow_file_instant && !allowed(idx, "instant") {
            for tok in INSTANT_TOKENS {
                if contains_token(clean, tok) {
                    violations.push(Violation {
                        path: rel.to_path_buf(),
                        line: line_no,
                        rule: "instant",
                        message: format!(
                            "direct `{})` in an instrumented crate; time through \
                             `bds_trace::Stopwatch`/`span!` or justify with \
                             `// lint:allow(instant)`",
                            tok.trim_end_matches('(')
                        ),
                    });
                }
            }
        }
        if is_docs_crate && !allow_file_docs && !allowed(idx, "docs") {
            if let Some(item) = public_item(clean) {
                if !has_doc_comment(&raw_lines, idx) {
                    violations.push(Violation {
                        path: rel.to_path_buf(),
                        line: line_no,
                        rule: "docs",
                        message: format!("public {item} is missing a doc comment"),
                    });
                }
            }
        }
    }
}

/// Substring match that refuses to start mid-identifier, so
/// `eprintln!(` does not also count as `println!(`.
fn contains_token(haystack: &str, tok: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(tok) {
        let at = from + pos;
        let prev = if at == 0 { None } else { Some(bytes[at - 1]) };
        let boundary =
            prev.is_none_or(|b| !(b.is_ascii_alphanumeric() || b == b'_') || tok.starts_with('.'));
        if boundary {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Matches a public item declaration needing a doc comment. Restricted
/// visibility (`pub(crate)`, `pub(super)`) and re-exports are exempt.
fn public_item(clean: &str) -> Option<&'static str> {
    let t = clean.trim_start();
    let rest = t.strip_prefix("pub ")?;
    for kw in [
        "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union",
    ] {
        if let Some(after) = rest.strip_prefix(kw) {
            if after.starts_with([' ', '\t']) {
                return Some(kw);
            }
        }
    }
    None
}

/// True when the lines above `idx` (skipping attributes) end in a doc
/// comment (`///` or `#[doc`).
fn has_doc_comment(raw_lines: &[&str], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = raw_lines[i].trim_start();
        if t.starts_with("#[") || t.starts_with("#![") || t.ends_with(']') && t.starts_with('#') {
            continue;
        }
        if t.is_empty() {
            return false;
        }
        return t.starts_with("///") || t.starts_with("#[doc") || t.starts_with("//!");
    }
    false
}

/// Removes comments and string/char literal contents line by line,
/// preserving line structure, so token matching cannot be fooled by
/// message text.
fn clean_lines(raw_lines: &[&str]) -> Vec<String> {
    let mut out = Vec::with_capacity(raw_lines.len());
    let mut in_block_comment = false;
    for line in raw_lines {
        let mut cleaned = String::with_capacity(line.len());
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if in_block_comment {
                if bytes[i..].starts_with(b"*/") {
                    in_block_comment = false;
                    i += 2;
                } else {
                    i += 1;
                }
                continue;
            }
            match bytes[i] {
                b'/' if bytes[i..].starts_with(b"//") => break, // line comment
                b'/' if bytes[i..].starts_with(b"/*") => {
                    in_block_comment = true;
                    i += 2;
                }
                b'"' => {
                    i = skip_string(bytes, i);
                    cleaned.push_str("\"\"");
                }
                b'r' if bytes[i..].starts_with(b"r\"") || bytes[i..].starts_with(b"r#") => {
                    i = skip_raw_string(bytes, i);
                    cleaned.push_str("\"\"");
                }
                b'\'' => {
                    // Char literal vs lifetime: a char literal closes with
                    // a quote within a few bytes; a lifetime does not.
                    if let Some(end) = char_literal_end(bytes, i) {
                        i = end;
                        cleaned.push_str("' '");
                    } else {
                        cleaned.push('\'');
                        i += 1;
                    }
                }
                b => {
                    cleaned.push(b as char);
                    i += 1;
                }
            }
        }
        out.push(cleaned);
    }
    out
}

/// Advances past a normal string literal starting at `start` (which must
/// point at the opening quote). Returns the index after the closing quote
/// (or end of line for multi-line strings — good enough for token hiding).
fn skip_string(bytes: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Advances past a raw string literal `r"..."` / `r#"..."#`.
fn skip_raw_string(bytes: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    let mut hashes = 0;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b'"' {
        return start + 1;
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0;
            while j < bytes.len() && bytes[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    bytes.len()
}

/// If a char literal starts at `start`, returns the index just past it.
fn char_literal_end(bytes: &[u8], start: usize) -> Option<usize> {
    let mut i = start + 1;
    if i >= bytes.len() {
        return None;
    }
    if bytes[i] == b'\\' {
        i += 2; // escape plus escaped byte (covers \n, \', \\, \u prefix)
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1;
        }
        return (i < bytes.len()).then_some(i + 1);
    }
    // Unescaped: exactly one character (possibly multi-byte) then a quote.
    let mut j = i + 1;
    while j < bytes.len() && j <= i + 4 {
        if bytes[j] == b'\'' {
            return Some(j + 1);
        }
        j += 1;
    }
    None
}

/// Marks lines inside `#[cfg(test)]`-gated blocks (test modules and
/// test-only items). Tracks brace depth from the block opened after the
/// attribute.
fn test_regions(raw_lines: &[&str], cleaned: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; raw_lines.len()];
    let mut i = 0;
    while i < raw_lines.len() {
        let t = raw_lines[i].trim_start();
        if t.starts_with("#[cfg(test)]") || t.starts_with("#[cfg(all(test") {
            // Find the block opened by the following item and consume it.
            let mut depth: i32 = 0;
            let mut opened = false;
            let mut j = i;
            while j < raw_lines.len() {
                in_test[j] = true;
                for b in cleaned[j].bytes() {
                    match b {
                        b'{' => {
                            depth += 1;
                            opened = true;
                        }
                        b'}' => depth -= 1,
                        // An attribute on a braceless item (e.g. a
                        // `#[cfg(test)] use …;`) ends at the semicolon.
                        b';' if !opened && depth == 0 => {
                            opened = true;
                            depth = 0;
                        }
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(text: &str) -> Vec<String> {
        let mut v = Vec::new();
        lint_file(Path::new("crates/demo/src/lib.rs"), text, &mut v);
        v.into_iter()
            .map(|v| format!("{}:{}", v.rule, v.line))
            .collect()
    }

    #[test]
    fn flags_unwrap_in_library_code() {
        let text = "fn f() {\n    let x = g().unwrap();\n}\n";
        assert_eq!(lint_str(text), vec!["panic:2"]);
    }

    #[test]
    fn allows_justified_unwrap() {
        let text = "fn f() {\n    // lint:allow(panic) — cannot fail, g is total\n    \
                    let x = g().unwrap();\n}\n";
        assert!(lint_str(text).is_empty());
    }

    #[test]
    fn same_line_justification_works() {
        let text = "fn f() {\n    let x = g().unwrap(); // lint:allow(panic) — total\n}\n";
        assert!(lint_str(text).is_empty());
    }

    #[test]
    fn file_level_allow_disables_rule() {
        let text = "// lint:allow-file(panic): generator code\nfn f() {\n    g().unwrap();\n}\n";
        assert!(lint_str(text).is_empty());
    }

    #[test]
    fn ignores_test_modules() {
        let text = "fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
                    g().unwrap();\n        println!(\"x\");\n    }\n}\n";
        assert!(lint_str(text).is_empty());
    }

    #[test]
    fn flags_code_after_test_module() {
        let text = "#[cfg(test)]\nmod tests {\n    fn t() { g().unwrap(); }\n}\n\
                    fn f() {\n    g().unwrap();\n}\n";
        assert_eq!(lint_str(text), vec!["panic:6"]);
    }

    #[test]
    fn strings_and_comments_do_not_trigger() {
        let text = "fn f() {\n    let s = \"call .unwrap() and panic!(now)\";\n    \
                    // .unwrap() in a comment\n}\n";
        assert!(lint_str(text).is_empty());
    }

    #[test]
    fn print_macros_flagged() {
        let text = "fn f() {\n    println!(\"hi\");\n    eprintln!(\"bye\");\n}\n";
        assert_eq!(lint_str(text), vec!["print:2", "print:3"]);
    }

    #[test]
    fn panic_macro_flagged() {
        let text = "fn f() {\n    panic!(\"boom\");\n    unreachable!(\"no\");\n}\n";
        assert_eq!(lint_str(text), vec!["panic:2", "panic:3"]);
    }

    fn docs_lint(text: &str) -> Vec<String> {
        let mut v = Vec::new();
        lint_file(Path::new("crates/bdd/src/lib.rs"), text, &mut v);
        v.into_iter()
            .filter(|v| v.rule == "docs")
            .map(|v| format!("{}:{}", v.rule, v.line))
            .collect()
    }

    #[test]
    fn undocumented_public_item_flagged() {
        let text = "pub fn naked() {}\n";
        assert_eq!(docs_lint(text), vec!["docs:1"]);
    }

    #[test]
    fn documented_public_item_passes() {
        let text = "/// Does a thing.\npub fn documented() {}\n";
        assert!(docs_lint(text).is_empty());
    }

    #[test]
    fn attribute_between_doc_and_item_ok() {
        let text = "/// Doc.\n#[inline]\npub fn documented() {}\n";
        assert!(docs_lint(text).is_empty());
    }

    #[test]
    fn pub_crate_items_exempt_from_docs() {
        let text = "pub(crate) fn internal() {}\npub use other::thing;\n";
        assert!(docs_lint(text).is_empty());
    }

    #[test]
    fn docs_rule_limited_to_docs_crates() {
        let text = "pub fn naked() {}\n";
        let mut v = Vec::new();
        lint_file(Path::new("crates/sop/src/lib.rs"), text, &mut v);
        assert!(v.iter().all(|v| v.rule != "docs"));
    }

    fn lint_at(path: &str, text: &str) -> Vec<String> {
        let mut v = Vec::new();
        lint_file(Path::new(path), text, &mut v);
        v.into_iter()
            .map(|v| format!("{}:{}", v.rule, v.line))
            .collect()
    }

    #[test]
    fn instant_now_flagged_in_instrumented_crates() {
        let text = "fn f() {\n    let t0 = std::time::Instant::now();\n}\n";
        assert_eq!(lint_at("crates/bdd/src/lib.rs", text), vec!["instant:2"]);
    }

    #[test]
    fn instant_now_allowed_in_trace_and_bench() {
        let text = "fn f() {\n    let t0 = Instant::now();\n}\n";
        assert!(lint_at("crates/trace/src/span.rs", text).is_empty());
        assert!(lint_at("crates/bench/src/timing.rs", text).is_empty());
    }

    #[test]
    fn system_time_now_flagged_like_instant() {
        let text = "fn f() {\n    let t = std::time::SystemTime::now();\n}\n";
        assert_eq!(lint_at("crates/bdd/src/lib.rs", text), vec!["instant:2"]);
        assert!(lint_at("crates/trace/src/span.rs", text).is_empty());
    }

    #[test]
    fn instant_justification_works() {
        let line = "fn f() {\n    // lint:allow(instant) — cold path, not worth a span\n    \
                    let t0 = Instant::now();\n}\n";
        assert!(lint_at("crates/bds-core/src/flow.rs", line).is_empty());
        let file = "// lint:allow-file(instant): startup timing only\nfn f() {\n    \
                    let t0 = Instant::now();\n}\n";
        assert!(lint_at("crates/bds-core/src/flow.rs", file).is_empty());
    }

    #[test]
    fn instant_ignored_in_test_modules() {
        let text = "#[cfg(test)]\nmod tests {\n    fn t() { let t = Instant::now(); }\n}\n";
        assert!(lint_at("crates/bdd/src/lib.rs", text).is_empty());
    }

    #[test]
    fn docs_rule_covers_trace_crate() {
        let text = "pub fn naked() {}\n";
        assert_eq!(lint_at("crates/trace/src/lib.rs", text), vec!["docs:1"]);
    }

    #[test]
    fn char_literals_do_not_break_cleaning() {
        let text = "fn f() {\n    let c = '\\'';\n    let l: &'static str = \"x\";\n    \
                    g().unwrap();\n}\n";
        assert_eq!(lint_str(text), vec!["panic:4"]);
    }

    #[test]
    fn raw_strings_hidden() {
        let text = "fn f() {\n    let s = r#\"has .unwrap() inside\"#;\n}\n";
        assert!(lint_str(text).is_empty());
    }

    #[test]
    fn expect_flagged_and_justifiable() {
        let text = "fn f() {\n    g().expect(\"msg\");\n}\n";
        assert_eq!(lint_str(text), vec!["panic:2"]);
    }
}
