//! Workspace automation (`cargo xtask`).
//!
//! Four subcommands:
//!
//! * `cargo xtask lint [--json <path>]` — the custom workspace lints,
//!   implemented by the in-tree static analyzer (`crates/analyze`,
//!   DESIGN.md §10): a real lexer + item parser feeding a rule
//!   registry (panic/print/docs/instant, the determinism suite
//!   iter-order/thread-id/float-cast, the concurrency suite
//!   static-mut/lock/thread-spawn, forbid-unsafe), audited
//!   `lint:allow` suppressions (a stale or reason-less allow is itself
//!   a violation), and a Cargo feature-graph checker (zero external
//!   dependencies, `trace` chain intact and default-off). Violations
//!   render as `path:line:col: [rule] message` and the process exits
//!   nonzero; `--json` additionally writes the schema-stable
//!   `bds-analyze-report/v1` report for CI artifacts.
//!
//! * `cargo xtask ci` — the full local gate: `cargo fmt --check`, then
//!   `cargo clippy --workspace --all-targets -- -D warnings`, then the
//!   custom lints above, then `cargo test --workspace`, then a build and
//!   test pass with the `trace` feature on (`--features bds-bench/trace`)
//!   so the instrumented configuration cannot rot.
//!
//! * `cargo xtask perfgate` — the perf-regression gate: runs the
//!   trace-enabled `table1` bench (or takes a pre-generated report via
//!   `--fresh <path>`), compares it against the checked-in baseline
//!   (`results/BENCH_flow.json`, override with `--baseline <path>`)
//!   through [`bds_trace::gate::compare_reports`], and exits nonzero on
//!   any regression — structural counts are exact, wall time gets a
//!   noise allowance. `--jobs <n>` runs the fresh `table1` with the
//!   sharded flow; the structural comparison against the sequential
//!   baseline stays exact because sharding is a pure scheduling change
//!   (only wall time may differ between thread counts). Zero matched circuits is also a failure: a gate
//!   that compares nothing protects nothing. The fresh report is left at
//!   `target/perfgate/fresh.json` so CI can upload it as an artifact.
//!   The wall-time allowance honors `BDS_PERFGATE_TOLERANCE`
//!   (`PCT` or `PCT+FLOOR`, e.g. `150+0.5`).
//!
//!   When a telemetry baseline exists (`results/TELEMETRY.json`,
//!   override with `--telemetry-baseline <path>`), the fresh run also
//!   writes `target/perfgate/telemetry.json` and gates the engine
//!   metrics — cache hit rate may not drop, peak arena bytes and peak
//!   unique-table load may not grow — through
//!   [`bds_trace::gate::compare_telemetry`]. All three are
//!   deterministic across `--jobs` settings, so the telemetry gate is
//!   exact (modulo float round-tripping).
//!
//!   On any regression the gate **attributes the blame**: it diffs the
//!   baseline and fresh span trees through [`bds_trace::attr`] and
//!   prints the top culprit span paths by self-time growth. The full
//!   attribution report (`bds-attr-report/v1`) is always written to
//!   `target/perfgate/attr.json`, and self-run gates also leave the
//!   Perfetto/folded/profile exports under `target/perfgate/` for CI
//!   artifacts. `--record` appends one `bds-perf-ledger/v1` line to
//!   `results/history/perf.jsonl` when the gate passes.
//!
//! * `cargo xtask perfhist [--ledger <path>] [--check]` — renders the
//!   perf history ledger as a trend table (wall-time deltas vs the
//!   previous entry and vs the seed row). `--check` only validates the
//!   ledger, so CI fails fast on a malformed line.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("ci") => run_ci(),
        Some("perfgate") => run_perfgate(&args[1..]),
        Some("perfhist") => run_perfhist(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask <lint|ci|perfgate|perfhist>");
            eprintln!("  lint      run the static analyzer [--json <path>]");
            eprintln!("  ci        fmt --check, clippy -D warnings, custom lints, tests");
            eprintln!("  perfgate  gate a fresh table1 run against the checked-in baseline");
            eprintln!("            [--baseline <report.json>] [--fresh <report.json>]");
            eprintln!(
                "            [--telemetry-baseline <telemetry.json>] [--jobs <n>] [--record]"
            );
            eprintln!("  perfhist  render the perf history ledger [--ledger <path>] [--check]");
            ExitCode::from(2)
        }
    }
}

fn workspace_root() -> PathBuf {
    // crates/xtask → workspace root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

// ---------------------------------------------------------------------------
// `cargo xtask lint`
// ---------------------------------------------------------------------------

fn run_lint(args: &[String]) -> ExitCode {
    let mut json_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => match it.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("lint: --json needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("lint: unknown flag {other}");
                eprintln!("usage: cargo xtask lint [--json <path>]");
                return ExitCode::from(2);
            }
        }
    }

    let root = workspace_root();
    let report = bds_analyze::analyze_workspace(&root);
    print!("{}", report.render_text());
    if let Some(path) = json_path {
        let path = if path.is_absolute() {
            path
        } else {
            root.join(path)
        };
        if let Some(parent) = path.parent() {
            if let Err(err) = std::fs::create_dir_all(parent) {
                eprintln!("lint: cannot create {}: {err}", parent.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(err) = std::fs::write(&path, report.render_json()) {
            eprintln!("lint: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!("lint: JSON report written to {}", path.display());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// `cargo xtask ci`
// ---------------------------------------------------------------------------

fn run_ci() -> ExitCode {
    let root = workspace_root();
    let steps: [(&str, &[&str]); 5] = [
        ("cargo fmt --check", &["fmt", "--all", "--", "--check"]),
        (
            "cargo clippy -D warnings",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
        ),
        // The remaining steps run after the custom lints below.
        ("cargo test", &["test", "--workspace", "--quiet"]),
        (
            "cargo build (trace)",
            &["build", "--workspace", "--features", "bds-bench/trace"],
        ),
        (
            "cargo test (trace)",
            &[
                "test",
                "--workspace",
                "--features",
                "bds-bench/trace",
                "--quiet",
            ],
        ),
    ];
    let mut failed = Vec::new();
    for (label, cmd_args) in &steps[..2] {
        println!("==> {label}");
        if !run_cargo(&root, cmd_args) {
            failed.push(*label);
        }
    }
    println!("==> cargo xtask lint");
    if run_lint(&[]) != ExitCode::SUCCESS {
        failed.push("cargo xtask lint");
    }
    for (label, cmd_args) in &steps[2..] {
        println!("==> {label}");
        if !run_cargo(&root, cmd_args) {
            failed.push(*label);
        }
    }
    if failed.is_empty() {
        println!("ci: all gates passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("ci: FAILED gates: {}", failed.join(", "));
        ExitCode::FAILURE
    }
}

fn run_cargo(root: &Path, args: &[&str]) -> bool {
    match Command::new("cargo").args(args).current_dir(root).status() {
        Ok(status) => status.success(),
        Err(err) => {
            eprintln!("failed to spawn cargo {}: {err}", args.join(" "));
            false
        }
    }
}

// ---------------------------------------------------------------------------
// `cargo xtask perfgate`
// ---------------------------------------------------------------------------

/// Where `perfgate` leaves the freshly generated report (relative to the
/// workspace root) so CI can pick it up as an artifact.
const FRESH_REPORT: &str = "target/perfgate/fresh.json";

/// Default baseline: the checked-in trace-enabled `table1` report.
const BASELINE_REPORT: &str = "results/BENCH_flow.json";

/// Where `perfgate` leaves the freshly generated telemetry document
/// (relative to the workspace root) so CI can upload it as an artifact.
const FRESH_TELEMETRY: &str = "target/perfgate/telemetry.json";

/// Default telemetry baseline: the checked-in `bds-telemetry/v1` file.
const TELEMETRY_BASELINE: &str = "results/TELEMETRY.json";

/// Where self-run gates leave the Perfetto trace-event export.
const FRESH_PERFETTO: &str = "target/perfgate/perfetto.json";

/// Where self-run gates leave the folded flamegraph stacks.
const FRESH_FOLDED: &str = "target/perfgate/folded.txt";

/// Where self-run gates leave the deterministic effort-tick profile.
const FRESH_PROFILE: &str = "target/perfgate/profile.txt";

/// Where every gate leaves the span-level attribution report.
const ATTR_REPORT: &str = "target/perfgate/attr.json";

/// The perf history ledger: one `bds-perf-ledger/v1` line per recorded
/// gate run, appended by `perfgate --record`, rendered by `perfhist`.
const LEDGER_PATH: &str = "results/history/perf.jsonl";

fn run_perfgate(args: &[String]) -> ExitCode {
    let root = workspace_root();
    let mut baseline = root.join(BASELINE_REPORT);
    let mut telemetry_baseline = root.join(TELEMETRY_BASELINE);
    let mut fresh: Option<PathBuf> = None;
    let mut jobs: Option<String> = None;
    let mut record = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(p) => baseline = PathBuf::from(p),
                None => return perfgate_usage("--baseline needs a path"),
            },
            "--telemetry-baseline" => match it.next() {
                Some(p) => telemetry_baseline = PathBuf::from(p),
                None => return perfgate_usage("--telemetry-baseline needs a path"),
            },
            "--fresh" => match it.next() {
                Some(p) => fresh = Some(PathBuf::from(p)),
                None => return perfgate_usage("--fresh needs a path"),
            },
            "--jobs" => match it.next().and_then(|v| v.trim().parse::<usize>().ok()) {
                Some(n) => jobs = Some(n.to_string()),
                None => return perfgate_usage("--jobs needs a count"),
            },
            "--record" => record = true,
            other => return perfgate_usage(&format!("unknown flag {other}")),
        }
    }
    if jobs.is_some() && fresh.is_some() {
        return perfgate_usage("--jobs only applies when perfgate runs table1 itself");
    }

    // Telemetry is only regenerated when perfgate runs table1 itself; a
    // pre-generated `--fresh` report carries no timeline file to diff.
    let mut fresh_telemetry: Option<PathBuf> = None;
    let fresh = match fresh {
        Some(path) => path,
        None => {
            // Regenerate: a release table1 run with tracing on, writing
            // the same report the baseline was produced from.
            let out = root.join(FRESH_REPORT);
            println!(
                "perfgate: running trace-enabled table1 (jobs={}) -> {}",
                jobs.as_deref().unwrap_or("default"),
                out.display()
            );
            let mut cargo_args = vec![
                "run",
                "--release",
                "--features",
                "trace",
                "--bin",
                "table1",
                "--",
                "--json",
                FRESH_REPORT,
                "--telemetry",
                FRESH_TELEMETRY,
                // Exporters ride along on every self-run gate so CI can
                // upload the Perfetto trace, the folded span stacks and
                // the deterministic profile next to the report.
                "--perfetto",
                FRESH_PERFETTO,
                "--folded",
                FRESH_FOLDED,
                "--profile",
                FRESH_PROFILE,
            ];
            if let Some(n) = &jobs {
                cargo_args.push("--jobs");
                cargo_args.push(n);
            }
            if !run_cargo(&root, &cargo_args) {
                eprintln!("perfgate: table1 run failed");
                return ExitCode::FAILURE;
            }
            fresh_telemetry = Some(root.join(FRESH_TELEMETRY));
            out
        }
    };

    let baseline_doc = match load_report(&baseline) {
        Ok(doc) => doc,
        Err(err) => {
            eprintln!(
                "perfgate: cannot load baseline {}: {err}",
                baseline.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let fresh_doc = match load_report(&fresh) {
        Ok(doc) => doc,
        Err(err) => {
            eprintln!(
                "perfgate: cannot load fresh report {}: {err}",
                fresh.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let thresholds = match bds_trace::gate::Thresholds::from_env() {
        Ok(thresholds) => thresholds,
        Err(err) => {
            eprintln!("perfgate: invalid tolerance: {err}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match bds_trace::gate::compare_reports(&baseline_doc, &fresh_doc, &thresholds) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("perfgate: {err}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", outcome.render());
    if outcome.matched == 0 {
        eprintln!(
            "perfgate: no circuits in common between {} and {} — refusing to pass an empty gate",
            baseline.display(),
            fresh.display()
        );
        return ExitCode::FAILURE;
    }

    // Attribution: diff the two span trees and counter sets. The full
    // report is always written (CI uploads it either way); the blame
    // table is only printed when the gate actually failed.
    match bds_trace::attr::diff_reports(&baseline_doc, &fresh_doc) {
        Ok(attr) => {
            let attr_path = root.join(ATTR_REPORT);
            if let Some(parent) = attr_path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            match std::fs::write(&attr_path, attr.to_json().render()) {
                Ok(()) => println!("perfgate: wrote {}", attr_path.display()),
                Err(err) => {
                    eprintln!("perfgate: cannot write {}: {err}", attr_path.display());
                    return ExitCode::FAILURE;
                }
            }
            if !outcome.passed() {
                print!("{}", attr.render_blame(bds_trace::attr::DEFAULT_TOP_K));
            }
        }
        Err(err) => eprintln!("perfgate: cannot attribute: {err}"),
    }

    // Engine-telemetry gate: exact comparison of cache hit rate and the
    // memory peaks when both the checked-in baseline and a fresh
    // telemetry document exist.
    let mut telemetry_failed = false;
    match &fresh_telemetry {
        Some(fresh_path) if telemetry_baseline.exists() => {
            match gate_telemetry(&telemetry_baseline, fresh_path) {
                Ok(passed) => telemetry_failed = !passed,
                Err(err) => {
                    eprintln!("perfgate: telemetry gate: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
        Some(_) => println!(
            "perfgate: no telemetry baseline at {} — skipping the telemetry gate",
            telemetry_baseline.display()
        ),
        None => println!("perfgate: --fresh given — skipping the telemetry gate"),
    }

    if outcome.passed() && !telemetry_failed {
        if record {
            if let Err(err) = record_ledger(&root, &fresh_doc, fresh_telemetry.as_deref()) {
                eprintln!("perfgate: cannot record ledger entry: {err}");
                return ExitCode::FAILURE;
            }
        }
        println!("perfgate: OK");
        ExitCode::SUCCESS
    } else {
        if record {
            eprintln!("perfgate: gate failed — not recording a ledger entry");
        }
        eprintln!("perfgate: FAILED");
        ExitCode::FAILURE
    }
}

/// Appends one `bds-perf-ledger/v1` line for the gated run to
/// `results/history/perf.jsonl`, stamped with the current short commit
/// hash (`unknown` outside a git checkout).
fn record_ledger(
    root: &Path,
    fresh_doc: &bds_trace::json::Json,
    telemetry: Option<&Path>,
) -> Result<(), String> {
    let telemetry_doc = match telemetry {
        Some(path) => Some(load_report(path).map_err(|e| format!("{}: {e}", path.display()))?),
        None => None,
    };
    let entry = bds_trace::ledger::LedgerEntry::from_report(
        fresh_doc,
        telemetry_doc.as_ref(),
        &short_commit(root),
    )?;
    let path = root.join(LEDGER_PATH);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
    }
    let mut text = std::fs::read_to_string(&path).unwrap_or_default();
    // Validate before appending: a corrupt ledger should fail loudly
    // here, not later in `perfhist --check`.
    bds_trace::ledger::parse_ledger(&text).map_err(|e| format!("existing ledger invalid: {e}"))?;
    if !text.is_empty() && !text.ends_with('\n') {
        text.push('\n');
    }
    text.push_str(&entry.to_line());
    text.push('\n');
    std::fs::write(&path, text).map_err(|e| e.to_string())?;
    println!(
        "perfgate: recorded {} ({} circuits, {:.3}s) -> {}",
        entry.commit,
        entry.circuits,
        entry.seconds,
        path.display()
    );
    Ok(())
}

/// The current short commit hash, or `unknown` when git is unavailable.
fn short_commit(root: &Path) -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(root)
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

// ---------------------------------------------------------------------------
// `cargo xtask perfhist`
// ---------------------------------------------------------------------------

fn run_perfhist(args: &[String]) -> ExitCode {
    let root = workspace_root();
    let mut ledger = root.join(LEDGER_PATH);
    let mut check = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ledger" => match it.next() {
                Some(p) => ledger = PathBuf::from(p),
                None => return perfhist_usage("--ledger needs a path"),
            },
            "--check" => check = true,
            other => return perfhist_usage(&format!("unknown flag {other}")),
        }
    }
    let text = match std::fs::read_to_string(&ledger) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("perfhist: cannot read {}: {err}", ledger.display());
            return ExitCode::FAILURE;
        }
    };
    let entries = match bds_trace::ledger::parse_ledger(&text) {
        Ok(entries) => entries,
        Err(err) => {
            eprintln!("perfhist: {}: {err}", ledger.display());
            return ExitCode::FAILURE;
        }
    };
    if entries.is_empty() {
        eprintln!("perfhist: {} has no entries", ledger.display());
        return ExitCode::FAILURE;
    }
    if check {
        println!(
            "perfhist: {} OK ({} entries)",
            ledger.display(),
            entries.len()
        );
    } else {
        print!("{}", bds_trace::ledger::render_history(&entries));
    }
    ExitCode::SUCCESS
}

fn perfhist_usage(problem: &str) -> ExitCode {
    eprintln!("perfhist: {problem}");
    eprintln!("usage: cargo xtask perfhist [--ledger <perf.jsonl>] [--check]");
    ExitCode::from(2)
}

/// Runs the telemetry gate between two `bds-telemetry/v1` files.
/// Returns `Ok(true)` when it passed.
fn gate_telemetry(baseline: &Path, fresh: &Path) -> Result<bool, String> {
    let baseline_doc =
        load_report(baseline).map_err(|e| format!("cannot load {}: {e}", baseline.display()))?;
    let fresh_doc =
        load_report(fresh).map_err(|e| format!("cannot load {}: {e}", fresh.display()))?;
    let outcome = bds_trace::gate::compare_telemetry(&baseline_doc, &fresh_doc)?;
    print!("telemetry {}", outcome.render());
    if outcome.matched == 0 {
        return Err(format!(
            "no circuits in common between {} and {} — refusing to pass an empty gate",
            baseline.display(),
            fresh.display()
        ));
    }
    Ok(outcome.passed())
}

fn load_report(path: &Path) -> Result<bds_trace::json::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    bds_trace::json::parse(&text).map_err(|e| e.to_string())
}

fn perfgate_usage(problem: &str) -> ExitCode {
    eprintln!("perfgate: {problem}");
    eprintln!(
        "usage: cargo xtask perfgate [--baseline <report.json>] [--fresh <report.json>] \
         [--telemetry-baseline <telemetry.json>] [--jobs <n>] [--record]"
    );
    ExitCode::from(2)
}
