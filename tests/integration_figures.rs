//! Figure-by-figure reproduction checks: each worked example of the
//! paper decomposes to the structure the paper derives, and every
//! factoring tree is exhaustively equivalent to its BDD.

use bds_repro::bdd::Manager;
use bds_repro::circuits::figures::{self, all_figures};
use bds_repro::core::decompose::{DecomposeParams, Decomposer};
use bds_repro::core::factor_tree::FactorForest;

fn decompose_figure(
    fig: figures::Figure,
) -> (
    Manager,
    FactorForest,
    Vec<bds_repro::core::factor_tree::FactorRef>,
    Decomposer,
) {
    let mut mgr = fig.manager;
    let mut forest = FactorForest::new();
    let mut dec = Decomposer::new();
    let params = DecomposeParams::default();
    let roots: Vec<_> = fig
        .functions
        .iter()
        .map(|&f| {
            dec.decompose(&mut mgr, f, &mut forest, &params)
                .expect("decompose")
        })
        .collect();
    (mgr, forest, roots, dec)
}

#[test]
fn every_figure_decomposes_equivalently() {
    for fig in all_figures() {
        let label = fig.label;
        let functions = fig.functions.clone();
        let (mgr, forest, roots, _) = decompose_figure(fig);
        let n = mgr.var_count();
        for (f, root) in functions.iter().zip(&roots) {
            for bits in 0..1u32 << n {
                let assign: Vec<bool> = (0..n).map(|k| bits >> k & 1 == 1).collect();
                assert_eq!(
                    mgr.eval(*f, &assign),
                    forest.eval(*root, &assign),
                    "{label} at {assign:?}"
                );
            }
        }
    }
}

#[test]
fn fig1_is_a_functional_mux() {
    let (_, _, _, dec) = decompose_figure(figures::fig1_ashenhurst());
    assert!(
        dec.stats.func_mux + dec.stats.xnor_dom + dec.stats.gen_xdom >= 1,
        "Ashenhurst column-multiplicity-2 chart ⇒ MUX/XNOR structure: {:?}",
        dec.stats
    );
}

#[test]
fn fig2_uses_algebraic_dominators() {
    let (_, _, _, dec) = decompose_figure(figures::fig2_conjunctive());
    assert!(
        dec.stats.and_dom >= 1,
        "Karplus AND decomposition: {:?}",
        dec.stats
    );
    let (_, _, _, dec) = decompose_figure(figures::fig2_disjunctive());
    assert!(
        dec.stats.or_dom >= 1,
        "Karplus OR decomposition: {:?}",
        dec.stats
    );
}

#[test]
fn fig4_reaches_eight_literals() {
    let (mgr, forest, roots, _) = decompose_figure(figures::fig4());
    let lits = forest.literal_count(roots[0]);
    assert!(
        lits <= 8,
        "paper's best-known decomposition has 8 literals, got {lits}: {}",
        forest.display(roots[0], &mgr)
    );
}

#[test]
fn fig8_uses_xnor_structure() {
    let (_, _, _, dec) = decompose_figure(figures::fig8());
    assert!(
        dec.stats.xnor_dom + dec.stats.gen_xdom >= 1,
        "x-dominator XNOR decomposition expected: {:?}",
        dec.stats
    );
}

#[test]
fn fig9_uses_structural_methods() {
    // The unit test `xor_decomp::fig9_rnd4_1` checks the generalized
    // x-dominator machinery directly; through the full priority stack the
    // functional MUX (priority 2) may legitimately claim this function
    // first — either way the engine must succeed without Shannon.
    let (_, _, _, dec) = decompose_figure(figures::fig9_rnd4_1());
    assert!(
        dec.stats.xnor_dom + dec.stats.gen_xdom + dec.stats.func_mux >= 1,
        "structural decomposition expected on rnd4-1: {:?}",
        dec.stats
    );
    assert_eq!(dec.stats.shannon, 0, "no fallback needed: {:?}", dec.stats);
}

#[test]
fn fig11_uses_functional_mux() {
    let (_, _, _, dec) = decompose_figure(figures::fig11());
    assert!(
        dec.stats.func_mux >= 1,
        "functional MUX decomposition expected: {:?}",
        dec.stats
    );
}

#[test]
fn fig14_shares_common_subtree() {
    let (_, _, roots, dec) = decompose_figure(figures::fig14_sharing());
    assert_eq!(roots.len(), 2);
    assert!(
        dec.stats.shared >= 1,
        "the common x⊕y logic must be shared between outputs: {:?}",
        dec.stats
    );
}

#[test]
fn figure_decompositions_beat_flat_sop_literals() {
    // The decomposed factoring trees should not be larger than a flat
    // two-level cover of the same function.
    for fig in all_figures() {
        let label = fig.label;
        let functions = fig.functions.clone();
        let (mut mgr, forest, roots, _) = decompose_figure(fig);
        for (f, root) in functions.iter().zip(&roots) {
            let (cubes, _) = mgr.isop(*f, *f).expect("isop");
            let flat: usize = cubes.iter().map(bds_repro::bdd::Cube::len).sum();
            let ours = forest.literal_count(*root);
            assert!(
                ours <= flat.max(2),
                "{label}: factored {ours} literals vs flat {flat}"
            );
        }
    }
}
