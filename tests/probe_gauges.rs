//! Temporary review probe: compare gauges between jobs=1 and jobs=4.

use bds_repro::circuits::adder::{carry_select_adder, ripple_adder};
use bds_repro::circuits::alu::alu;
use bds_repro::circuits::comparator::comparator;
use bds_repro::circuits::ecc::hamming_encoder;
use bds_repro::circuits::misc::{gray_to_bin, popcount};
use bds_repro::circuits::multiplier::multiplier;
use bds_repro::circuits::parity::{parity_chain, parity_tree};
use bds_repro::circuits::shifter::barrel_shifter;
use bds_repro::core::flow::{optimize, FlowParams};
use bds_repro::network::Network;

fn params(jobs: usize) -> FlowParams {
    FlowParams {
        jobs,
        ..FlowParams::default()
    }
}

#[test]
fn probe_gauges_match() {
    let suite: Vec<(String, Network)> = vec![
        ("add8".into(), ripple_adder(8)),
        ("csel8".into(), carry_select_adder(8, 2)),
        ("parity12".into(), parity_tree(12)),
        ("paritych10".into(), parity_chain(10)),
        ("cmp8".into(), comparator(8)),
        ("ecc16".into(), hamming_encoder(16)),
        ("m4x4".into(), multiplier(4, 4)),
        ("alu4".into(), alu(4)),
        ("bshift16".into(), barrel_shifter(16)),
        ("popcount9".into(), popcount(9)),
        ("g2b10".into(), gray_to_bin(10)),
    ];
    let mut bad = Vec::new();
    for (name, net) in suite {
        bds_trace::reset();
        let _ = optimize(&net, &params(1)).unwrap();
        let seq = bds_trace::take_snapshot();
        bds_trace::reset();
        let _ = optimize(&net, &params(4)).unwrap();
        let par = bds_trace::take_snapshot();
        if seq.gauges != par.gauges {
            bad.push(format!("{name}: seq={:?} par={:?}", seq.gauges, par.gauges));
        }
        if seq.counters != par.counters {
            bad.push(format!("{name}: COUNTERS diverged"));
        }
    }
    assert!(bad.is_empty(), "{}", bad.join("\n"));
}
