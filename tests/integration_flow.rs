//! End-to-end integration: every generator family through the full BDS
//! flow with BDD-based equivalence checking, plus the algebraic baseline
//! on the same circuits.

use bds_repro::circuits::adder::{carry_select_adder, ripple_adder};
use bds_repro::circuits::alu::alu;
use bds_repro::circuits::comparator::comparator;
use bds_repro::circuits::ecc::hamming_encoder;
use bds_repro::circuits::misc::{
    bin_to_gray, carry_lookahead_adder, decoder, gray_to_bin, popcount, priority_encoder,
};
use bds_repro::circuits::multiplier::multiplier;
use bds_repro::circuits::parity::parity_tree;
use bds_repro::circuits::random_logic::{random_logic, RandomLogicParams};
use bds_repro::circuits::shifter::{barrel_shifter, logical_shifter};
use bds_repro::core::flow::{optimize, FlowParams};
use bds_repro::core::sis_flow::{script_rugged, SisParams};
use bds_repro::network::verify::{verify, Verdict};
use bds_repro::network::Network;

fn assert_both_flows_sound(name: &str, net: &Network) {
    let (bds_out, _) = optimize(net, &FlowParams::default())
        .unwrap_or_else(|e| panic!("{name}: bds flow failed: {e}"));
    assert_eq!(
        verify(net, &bds_out, 4_000_000).unwrap(),
        Verdict::Equivalent,
        "{name}: BDS result must be equivalent"
    );
    let (sis_out, _) = script_rugged(net, &SisParams::default())
        .unwrap_or_else(|e| panic!("{name}: baseline flow failed: {e}"));
    assert_eq!(
        verify(net, &sis_out, 4_000_000).unwrap(),
        Verdict::Equivalent,
        "{name}: baseline result must be equivalent"
    );
}

#[test]
fn adders_survive_both_flows() {
    assert_both_flows_sound("add6", &ripple_adder(6));
    assert_both_flows_sound("csel8", &carry_select_adder(8, 2));
}

#[test]
fn multiplier_survives_both_flows() {
    assert_both_flows_sound("m4x4", &multiplier(4, 4));
}

#[test]
fn shifters_survive_both_flows() {
    assert_both_flows_sound("bshift16", &barrel_shifter(16));
    assert_both_flows_sound("lshift8", &logical_shifter(8));
}

#[test]
fn xor_classes_survive_both_flows() {
    assert_both_flows_sound("parity12", &parity_tree(12));
    assert_both_flows_sound("ecc16", &hamming_encoder(16));
    assert_both_flows_sound("cmp8", &comparator(8));
}

#[test]
fn alu_survives_both_flows() {
    assert_both_flows_sound("alu4", &alu(4));
}

#[test]
fn misc_families_survive_both_flows() {
    assert_both_flows_sound("cla6", &carry_lookahead_adder(6));
    assert_both_flows_sound("dec4", &decoder(4));
    assert_both_flows_sound("prio6", &priority_encoder(6));
    assert_both_flows_sound("popcount7", &popcount(7));
    assert_both_flows_sound("b2g6", &bin_to_gray(6));
    assert_both_flows_sound("g2b6", &gray_to_bin(6));
}

#[test]
fn random_logic_survives_both_flows() {
    for seed in [1u64, 2, 3] {
        let net = random_logic(
            &RandomLogicParams {
                inputs: 10,
                outputs: 5,
                nodes: 30,
                ..Default::default()
            },
            seed,
        );
        assert_both_flows_sound(&format!("rand{seed}"), &net);
    }
}

/// The flow must never *increase* mapped area dramatically: the portfolio
/// keeps the structure-preserving candidate as a floor.
#[test]
fn flow_is_not_catastrophically_worse_than_input() {
    use bds_repro::map::{map_network, Library};
    let lib = Library::mcnc();
    for net in [multiplier(4, 4), barrel_shifter(16), ripple_adder(8)] {
        let before = map_network(&net, &lib).unwrap().area;
        let (out, _) = optimize(&net, &FlowParams::default()).unwrap();
        let after = map_network(&out, &lib).unwrap().area;
        assert!(
            after <= before * 1.25,
            "{}: area regressed {before} → {after}",
            net.name()
        );
    }
}

/// XOR-intensive circuits must not end up larger under BDS than under
/// the algebraic baseline — the headline claim of the paper. Compared on
/// mapped area (the paper's figure of merit), since raw literal counts
/// misprice XNOR covers.
#[test]
fn bds_beats_baseline_on_parity_area() {
    use bds_repro::map::{map_network, Library};
    let lib = Library::mcnc();
    let net = parity_tree(12);
    let (bds_out, _) = optimize(&net, &FlowParams::default()).unwrap();
    let (sis_out, _) = script_rugged(&net, &SisParams::default()).unwrap();
    let b = map_network(&bds_out, &lib).unwrap().area;
    let s = map_network(&sis_out, &lib).unwrap().area;
    assert!(
        b <= s * 1.02,
        "BDS (area {b}) must not lose to the algebraic baseline ({s}) on parity"
    );
}
