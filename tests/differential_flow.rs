//! Differential-testing harness for the sharded flow: the parallel
//! partitioned flow must be a **pure scheduling change**. For every
//! circuit, running `optimize` with `jobs = 1` and `jobs = 4` must
//! (a) produce networks provably equivalent to the input, and
//! (b) produce byte-identical BLIF output and identical structural
//! report fields — networks, literal counts, decomposition statistics,
//! BDD operation counters, peak gauges. Only wall-clock fields may
//! differ. A separate determinism test runs the `jobs = 4`
//! configuration repeatedly and checks the merged trace counters too
//! (trivially empty unless built with `--features trace`).

use bds_repro::circuits::adder::{carry_select_adder, ripple_adder};
use bds_repro::circuits::alu::alu;
use bds_repro::circuits::comparator::comparator;
use bds_repro::circuits::ecc::hamming_encoder;
use bds_repro::circuits::misc::{gray_to_bin, popcount};
use bds_repro::circuits::multiplier::multiplier;
use bds_repro::circuits::parity::{parity_chain, parity_tree};
use bds_repro::circuits::random_logic::{random_logic, RandomLogicParams};
use bds_repro::circuits::shifter::barrel_shifter;
use bds_repro::core::flow::{optimize, FlowParams, FlowReport};
use bds_repro::network::verify::{verify, Verdict};
use bds_repro::network::{blif, Network};
use bds_trace::{Snapshot, SpanSnap};

/// Flow parameters pinned to an explicit worker count — bypassing the
/// `BDS_FLOW_JOBS` environment default so the differential pairing is
/// what this file says it is, whatever the ambient configuration.
fn params(jobs: usize) -> FlowParams {
    let mut p = FlowParams {
        jobs,
        ..FlowParams::default()
    };
    // A generous but *finite* effort budget: the acceptance contract is
    // that merely configuring the governor (without tripping it) leaves
    // every benchmark on rung 0 with unchanged output.
    p.govern.supernode_budget = 200_000_000;
    p
}

/// The benchmark set: one representative of every generator family that
/// is cheap enough to run through the full flow portfolio repeatedly.
fn benchmark_suite() -> Vec<(String, Network)> {
    let mut suite: Vec<(String, Network)> = vec![
        ("add8".into(), ripple_adder(8)),
        ("csel8".into(), carry_select_adder(8, 2)),
        ("parity12".into(), parity_tree(12)),
        ("paritych10".into(), parity_chain(10)),
        ("cmp8".into(), comparator(8)),
        ("ecc16".into(), hamming_encoder(16)),
        ("m4x4".into(), multiplier(4, 4)),
        ("alu4".into(), alu(4)),
        ("bshift16".into(), barrel_shifter(16)),
        ("popcount9".into(), popcount(9)),
        ("g2b10".into(), gray_to_bin(10)),
    ];
    for seed in [7u64, 1003] {
        suite.push((
            format!("rand{seed}"),
            random_logic(
                &RandomLogicParams {
                    inputs: 12,
                    outputs: 6,
                    nodes: 40,
                    ..Default::default()
                },
                seed,
            ),
        ));
    }
    suite
}

/// Asserts every structural (non-wall-clock) field of two flow reports
/// matches. `seconds` is deliberately ignored: it is the one field the
/// determinism contract exempts.
fn assert_reports_structurally_equal(name: &str, a: &FlowReport, b: &FlowReport) {
    assert_eq!(a.mode, b.mode, "{name}: mode diverged");
    assert_eq!(a.decompose, b.decompose, "{name}: decompose stats diverged");
    assert_eq!(a.bdd_ops, b.bdd_ops, "{name}: BDD op counters diverged");
    assert_eq!(
        a.peak_bdd_nodes, b.peak_bdd_nodes,
        "{name}: peak BDD nodes diverged"
    );
    assert_eq!(
        a.eliminated, b.eliminated,
        "{name}: eliminate count diverged"
    );
    assert_eq!(a.degraded, b.degraded, "{name}: degraded count diverged");
    assert_eq!(
        a.peak_arena_bytes, b.peak_arena_bytes,
        "{name}: peak arena bytes diverged"
    );
    assert!(
        (a.peak_unique_load - b.peak_unique_load).abs() < 1e-12,
        "{name}: peak unique-table load diverged ({} vs {})",
        a.peak_unique_load,
        b.peak_unique_load
    );
}

#[test]
fn jobs1_and_jobs4_agree_on_every_benchmark() {
    for (name, net) in benchmark_suite() {
        let (seq_out, seq_report) = optimize(&net, &params(1))
            .unwrap_or_else(|e| panic!("{name}: sequential flow failed: {e}"));
        let (par_out, par_report) = optimize(&net, &params(4))
            .unwrap_or_else(|e| panic!("{name}: sharded flow failed: {e}"));

        // (a) Both results are provably equivalent to the input.
        assert_eq!(
            verify(&net, &seq_out, 4_000_000).unwrap(),
            Verdict::Equivalent,
            "{name}: sequential result must be equivalent"
        );
        assert_eq!(
            verify(&net, &par_out, 4_000_000).unwrap(),
            Verdict::Equivalent,
            "{name}: sharded result must be equivalent"
        );

        // (b) Structural identity: same network, same report numbers.
        let (ss, ps) = (seq_out.stats(), par_out.stats());
        assert_eq!(ss.literals, ps.literals, "{name}: literal counts diverged");
        assert_eq!(ss.nodes, ps.nodes, "{name}: node counts diverged");
        assert_eq!(
            blif::write(&seq_out),
            blif::write(&par_out),
            "{name}: BLIF output diverged between jobs=1 and jobs=4"
        );
        assert_reports_structurally_equal(&name, &seq_report, &par_report);
    }
}

/// The scheduling-invariance contract must survive garbage collection:
/// with GC forced at every build→reorder boundary (`min_nodes: 1`),
/// jobs=1 and jobs=4 still emit byte-identical BLIF and identical
/// structural reports — collections trigger per-supernode, never
/// per-thread.
#[test]
fn jobs1_and_jobs4_agree_with_forced_gc() {
    let suite: Vec<(String, Network)> = vec![
        ("add8".into(), ripple_adder(8)),
        ("csel8".into(), carry_select_adder(8, 2)),
        ("ecc16".into(), hamming_encoder(16)),
        ("alu4".into(), alu(4)),
    ];
    for (name, net) in suite {
        let mut p1 = params(1);
        p1.gc.min_nodes = 1;
        let mut p4 = params(4);
        p4.gc.min_nodes = 1;
        let (seq_out, seq_report) = optimize(&net, &p1)
            .unwrap_or_else(|e| panic!("{name}: GC-forced sequential flow failed: {e}"));
        let (par_out, par_report) = optimize(&net, &p4)
            .unwrap_or_else(|e| panic!("{name}: GC-forced sharded flow failed: {e}"));
        assert_eq!(
            verify(&net, &seq_out, 4_000_000).unwrap(),
            Verdict::Equivalent,
            "{name}: GC-forced result must be equivalent"
        );
        assert_eq!(
            blif::write(&seq_out),
            blif::write(&par_out),
            "{name}: BLIF diverged between jobs=1 and jobs=4 with GC forced"
        );
        assert_reports_structurally_equal(&name, &seq_report, &par_report);
    }
}

#[test]
fn jobs_zero_auto_detect_matches_sequential() {
    let net = ripple_adder(8);
    let (seq_out, seq_report) = optimize(&net, &params(1)).unwrap();
    let (auto_out, auto_report) = optimize(&net, &params(0)).unwrap();
    assert_eq!(blif::write(&seq_out), blif::write(&auto_out));
    assert_reports_structurally_equal("add8/auto", &seq_report, &auto_report);
}

/// Flattens a span tree into `(path, calls)` pairs, dropping the
/// wall-time field — call counts must be deterministic, durations are
/// not.
fn span_calls(prefix: &str, spans: &[SpanSnap], out: &mut Vec<(String, u64)>) {
    for s in spans {
        let path = format!("{prefix}/{}", s.name);
        out.push((path.clone(), s.calls));
        span_calls(&path, &s.children, out);
    }
}

/// The deterministic projection of a snapshot: counters, gauges,
/// histogram totals, and span call counts — everything except wall time.
fn structural_view(snap: &Snapshot) -> Vec<(String, u64)> {
    let mut view: Vec<(String, u64)> = Vec::new();
    for (name, v) in &snap.counters {
        view.push((format!("counter:{name}"), *v));
    }
    for (name, v) in &snap.gauges {
        view.push((format!("gauge:{name}"), *v));
    }
    for (name, h) in &snap.histograms {
        view.push((format!("histogram:{name}"), h.count));
    }
    let mut spans = Vec::new();
    span_calls("span", &snap.spans, &mut spans);
    view.extend(spans);
    view
}

#[test]
fn three_jobs4_runs_are_byte_identical() {
    let suite: Vec<(String, Network)> = vec![
        ("csel8".into(), carry_select_adder(8, 2)),
        ("ecc16".into(), hamming_encoder(16)),
        ("m4x4".into(), multiplier(4, 4)),
    ];
    for (name, net) in suite {
        let mut blifs: Vec<String> = Vec::new();
        let mut traces: Vec<Vec<(String, u64)>> = Vec::new();
        for _ in 0..3 {
            bds_trace::reset();
            let (out, _) = optimize(&net, &params(4))
                .unwrap_or_else(|e| panic!("{name}: sharded flow failed: {e}"));
            traces.push(structural_view(&bds_trace::take_snapshot()));
            blifs.push(blif::write(&out));
        }
        assert_eq!(
            blifs[0], blifs[1],
            "{name}: BLIF diverged between jobs=4 runs"
        );
        assert_eq!(
            blifs[1], blifs[2],
            "{name}: BLIF diverged between jobs=4 runs"
        );
        assert_eq!(
            traces[0], traces[1],
            "{name}: merged trace diverged between jobs=4 runs"
        );
        assert_eq!(
            traces[1], traces[2],
            "{name}: merged trace diverged between jobs=4 runs"
        );
    }
}

#[test]
fn jobs1_and_jobs4_timelines_are_structurally_identical() {
    // The sampled telemetry timeline obeys the same contract as every
    // other report field: the structural projection (scope, tick, and
    // every sampled gauge — everything except `wall_ns`) must render to
    // byte-identical JSON at any job count. Without `--features trace`
    // sampling is compiled out and both timelines are empty.
    let suite: Vec<(String, Network)> = vec![
        ("csel8".into(), carry_select_adder(8, 2)),
        ("ecc16".into(), hamming_encoder(16)),
        ("m4x4".into(), multiplier(4, 4)),
    ];
    for (name, net) in suite {
        bds_trace::reset();
        let _ = optimize(&net, &params(1)).unwrap();
        let seq = bds_trace::timeline::take_timeline();
        bds_trace::reset();
        let _ = optimize(&net, &params(4)).unwrap();
        let par = bds_trace::timeline::take_timeline();
        assert_eq!(
            seq.structural_json().render(),
            par.structural_json().render(),
            "{name}: timeline structural fields diverged between jobs=1 and jobs=4"
        );
        if bds_trace::is_enabled() {
            assert!(
                !seq.is_empty(),
                "{name}: trace-enabled run should have sampled the timeline"
            );
        } else {
            assert!(seq.is_empty() && par.is_empty());
        }
    }
}

#[test]
fn jobs1_and_jobs4_profiles_are_byte_identical() {
    // The effort-tick profiler samples on a clock that is a pure
    // function of the work performed, and worker samples are grafted
    // under the coordinator's open span exactly like snapshot spans —
    // so the rendered profile must be byte-for-byte identical at any
    // job count, sample counts included (not just structurally).
    // Without `--features trace` sampling is compiled out entirely.
    let suite: Vec<(String, Network)> = vec![
        ("csel8".into(), carry_select_adder(8, 2)),
        ("ecc16".into(), hamming_encoder(16)),
        ("m4x4".into(), multiplier(4, 4)),
    ];
    for (name, net) in suite {
        bds_trace::reset();
        let _ = optimize(&net, &params(1)).unwrap();
        let seq = bds_trace::profile::take_profile();
        bds_trace::reset();
        let _ = optimize(&net, &params(4)).unwrap();
        let par = bds_trace::profile::take_profile();
        assert_eq!(
            seq.to_json().render(),
            par.to_json().render(),
            "{name}: profile diverged between jobs=1 and jobs=4"
        );
        assert_eq!(
            seq.folded(&name),
            par.folded(&name),
            "{name}: folded profile diverged between jobs=1 and jobs=4"
        );
        if bds_trace::is_enabled() {
            assert!(
                !seq.is_empty(),
                "{name}: trace-enabled run should have sampled the profile"
            );
        } else {
            assert!(seq.is_empty() && par.is_empty());
        }
    }
}

#[test]
fn jobs4_trace_counters_match_sequential() {
    // Counters and span call counts — not just the final network — must
    // be independent of the thread count: workers drain their
    // thread-local registries and the coordinator merges them in fixed
    // order. (Without `--features trace` both snapshots are empty and
    // this checks the no-op path stays a no-op across threads.)
    let net = carry_select_adder(8, 2);
    bds_trace::reset();
    let _ = optimize(&net, &params(1)).unwrap();
    let seq = structural_view(&bds_trace::take_snapshot());
    bds_trace::reset();
    let _ = optimize(&net, &params(4)).unwrap();
    let par = structural_view(&bds_trace::take_snapshot());
    assert_eq!(seq, par, "trace structural view diverged with jobs=4");
    if bds_trace::is_enabled() {
        assert!(
            seq.iter().any(|(k, _)| k == "counter:bdd.ite_calls"),
            "trace-enabled run should have recorded BDD counters"
        );
    }
}
