//! Error-plumbing round-trips: every public error variant must render a
//! useful `Display`, report the right `source()`, and back-pressure
//! signals ([`BddError::NodeLimit`], [`BddError::BudgetExceeded`]) must
//! travel through the layered APIs without being flattened into panics
//! or generic strings.

use std::error::Error;

use bds_repro::bdd::{BddError, OpClass};
use bds_repro::circuits::adder::{carry_select_adder, ripple_adder};
use bds_repro::core::flow::{optimize, FlowParams};
use bds_repro::network::NetworkError;

/// Every `BddError` variant: Display is lowercase, names its payload,
/// and `source()` is `None` (it is the root of the error chain).
#[test]
fn bdd_error_display_round_trips() {
    let cases: Vec<(BddError, &str)> = vec![
        (
            BddError::NodeLimit { limit: 17 },
            "bdd node limit of 17 exceeded",
        ),
        (
            BddError::UnknownVar {
                var: 9,
                var_count: 4,
            },
            "variable v9 is not one of the 4 manager variables",
        ),
        (
            BddError::BadVarMap {
                detail: "missing v2".into(),
            },
            "invalid variable map: missing v2",
        ),
        (
            BddError::InvariantViolation {
                detail: "dangling edge".into(),
            },
            "bdd invariant violated: dangling edge",
        ),
        (
            BddError::BudgetExceeded {
                spent: 101,
                limit: 100,
                op: OpClass::Ite,
            },
            "bdd effort budget of 100 ticks exceeded at 101 (ite step)",
        ),
        (
            BddError::BudgetExceeded {
                spent: 33,
                limit: 32,
                op: OpClass::UniqueInsert,
            },
            "bdd effort budget of 32 ticks exceeded at 33 (unique-insert step)",
        ),
    ];
    for (err, expected) in cases {
        assert_eq!(err.to_string(), expected);
        assert!(err.source().is_none(), "{err}: BddError is a chain root");
        let lower = err.to_string();
        assert_eq!(lower, lower.to_lowercase(), "{err}: Display not lowercase");
    }
}

/// Every `NetworkError` variant: Display round-trips and only `Bdd`
/// carries a `source()`.
#[test]
fn network_error_display_and_source_round_trip() {
    let cases: Vec<(NetworkError, &str, bool)> = vec![
        (
            NetworkError::DuplicateName { name: "x0".into() },
            "signal `x0` already exists",
            false,
        ),
        (
            NetworkError::UnknownSignal { name: "q".into() },
            "unknown signal `q`",
            false,
        ),
        (
            NetworkError::Cycle { name: "n3".into() },
            "adding node `n3` would create a combinational cycle",
            false,
        ),
        (
            NetworkError::Inconsistent {
                detail: "orphan output".into(),
            },
            "inconsistent network: orphan output",
            false,
        ),
        (
            NetworkError::Blif {
                line: 12,
                detail: "bad token".into(),
            },
            "blif parse error at line 12: bad token",
            false,
        ),
        (
            NetworkError::BadAssignment {
                expected: 8,
                got: 5,
            },
            "assignment provides 5 values for 8 inputs",
            false,
        ),
        (
            NetworkError::Bdd(BddError::NodeLimit { limit: 5 }),
            "bdd failure: bdd node limit of 5 exceeded",
            true,
        ),
        (
            NetworkError::Bdd(BddError::BudgetExceeded {
                spent: 8,
                limit: 7,
                op: OpClass::UniqueInsert,
            }),
            "bdd failure: bdd effort budget of 7 ticks exceeded at 8 (unique-insert step)",
            true,
        ),
        (
            NetworkError::WorkerPanic {
                node: "n42".into(),
                detail: "injected fault: worker panic at effort tick 7".into(),
            },
            "worker panicked on supernode `n42`: injected fault: worker panic at effort tick 7",
            false,
        ),
    ];
    for (err, expected, has_source) in cases {
        assert_eq!(err.to_string(), expected);
        assert_eq!(err.source().is_some(), has_source, "{err}: wrong source()");
        if let Some(src) = err.source() {
            assert!(
                expected.ends_with(&src.to_string()),
                "{err}: Display should embed its source"
            );
        }
    }
}

/// `From<BddError> for NetworkError` preserves the payload exactly.
#[test]
fn bdd_error_converts_losslessly() {
    let inner = BddError::BudgetExceeded {
        spent: 3,
        limit: 2,
        op: OpClass::Ite,
    };
    let outer: NetworkError = inner.clone().into();
    match &outer {
        NetworkError::Bdd(e) => assert_eq!(*e, inner),
        other => panic!("expected Bdd variant, got {other}"),
    }
}

/// A global-BDD build under an impossible node limit surfaces the limit
/// as structured back-pressure, not a panic or a stringly error.
#[test]
fn global_bdd_node_limit_is_structured() {
    let net = ripple_adder(8);
    let err = net.global_bdds(5).expect_err("limit 5 must trip");
    match err {
        NetworkError::Bdd(BddError::NodeLimit { limit }) => assert_eq!(limit, 5),
        other => panic!("expected Bdd(NodeLimit), got {other}"),
    }
}

/// Eliminate's node-limit back-pressure is absorbed *inside* `optimize`:
/// a starvation-level `max_local_bdd` rejects collapses but never fails
/// the flow.
#[test]
fn eliminate_back_pressure_is_absorbed_by_optimize() {
    let net = carry_select_adder(8, 2);
    let mut params = FlowParams {
        jobs: 1,
        global_limit: 0,
        ..FlowParams::default()
    };
    params.eliminate.max_local_bdd = 1;
    let (out, report) = optimize(&net, &params).expect("back-pressure must be absorbed");
    assert_eq!(
        bds_repro::network::verify::verify(&net, &out, 4_000_000).unwrap(),
        bds_repro::network::verify::Verdict::Equivalent
    );
    assert_eq!(report.eliminated, 0, "limit 1 admits no collapse");
}
