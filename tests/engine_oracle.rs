//! Reference-oracle differential suite for the engine core.
//!
//! The fast engine (canonical ITE triples, packed keys, fast hashing,
//! GC) is gated by the deliberately naive truth-table engine in
//! `bds_bdd::oracle`: random operation sequences are applied to both,
//! truth-table equality is asserted after **every** operation, and the
//! full structural audit (`check_invariants`) runs after every step —
//! including across a forced garbage collection and a forced reorder.
//! Every case is seeded by `bds-prop`, so any failure replays exactly.

use bds_prop::{check_cases, Rng};
use bds_repro::bdd::oracle::Oracle;
use bds_repro::bdd::reorder::{sift, SiftLimits};
use bds_repro::bdd::{Edge, IteNorm, Manager, Var};
use bds_repro::circuits::adder::carry_select_adder;
use bds_repro::circuits::alu::alu;
use bds_repro::circuits::random_logic::{random_logic, RandomLogicParams};
use bds_repro::core::flow::{optimize, FlowParams};
use bds_repro::network::blif;
use bds_repro::network::verify::{verify, Verdict};

/// Variable universe for the randomized differential cases. Small
/// enough that a truth-table comparison is 32 entries, large enough for
/// non-trivial sharing, reordering and collection behaviour.
const NVARS: usize = 5;

/// Cap on the live function pool per case; a new result replaces a
/// random slot once the pool is full, so dead nodes accumulate — the
/// garbage a forced collection must then reclaim.
const POOL_CAP: usize = 16;

/// Randomized cases per property (the acceptance floor is 200).
const CASES: u32 = 220;

/// One engine function paired with its ground-truth table.
type Tracked = (Edge, Oracle);

fn seed_pool(m: &mut Manager, vars: &[Var]) -> Vec<Tracked> {
    let mut pool: Vec<Tracked> = vec![
        (Edge::ONE, Oracle::constant(NVARS, true)),
        (Edge::ZERO, Oracle::constant(NVARS, false)),
    ];
    for (i, &v) in vars.iter().enumerate() {
        pool.push((m.literal(v, true), Oracle::literal(NVARS, i, true)));
    }
    pool
}

/// Asserts that every pool entry still computes its recorded function
/// and that the manager is structurally sound.
fn audit_pool(m: &Manager, pool: &[Tracked], when: &str) {
    m.check_invariants()
        .unwrap_or_else(|e| panic!("invariants broken {when}: {e}"));
    for (i, (e, oracle)) in pool.iter().enumerate() {
        assert_eq!(
            &Oracle::from_manager(m, *e, NVARS),
            oracle,
            "pool entry {i} diverged from the oracle {when}"
        );
    }
}

/// Records `entry` in the pool, replacing a random slot once the pool
/// is at capacity (keeping the constants and literals replaceable too —
/// they can always be rebuilt by later draws).
fn push(pool: &mut Vec<Tracked>, rng: &mut Rng, entry: Tracked) {
    if pool.len() < POOL_CAP {
        pool.push(entry);
    } else {
        let slot = rng.range_usize(0..pool.len());
        pool[slot] = entry;
    }
}

/// Forces a full collection with every pool function rooted, checks the
/// census drops to zero and that nothing rooted changed function.
fn force_gc(m: &mut Manager, pool: &mut [Tracked]) {
    let mut handles: Vec<Edge> = pool.iter().map(|p| p.0).collect();
    let dead_before = m.dead_node_count(&handles);
    for &e in &handles {
        m.add_root(e);
    }
    let stats = m.collect_garbage(&mut handles);
    assert_eq!(
        stats.collected, dead_before,
        "collection must reclaim exactly the dead census"
    );
    for (slot, &e) in pool.iter_mut().zip(&handles) {
        slot.0 = e;
    }
    for &e in &handles {
        m.release_root(e);
    }
    assert_eq!(m.root_count(), 0, "balanced add/release must drain roots");
    let dead_after = m.dead_node_count(&handles);
    assert!(
        dead_after <= dead_before,
        "census must decrease monotonically"
    );
    assert_eq!(dead_after, 0, "a full collection leaves no garbage");
    audit_pool(m, pool, "after forced GC");
}

/// Forces a reorder (rebuild-based sifting) and re-verifies the pool in
/// the new manager.
fn force_reorder(m: Manager, pool: &mut [Tracked]) -> Manager {
    let edges: Vec<Edge> = pool.iter().map(|p| p.0).collect();
    let (m2, edges2) = sift(&m, &edges, SiftLimits::default()).expect("sift is unbudgeted here");
    for (slot, &e) in pool.iter_mut().zip(&edges2) {
        slot.0 = e;
    }
    audit_pool(&m2, pool, "after forced reorder");
    m2
}

#[test]
fn randomized_ops_agree_with_the_oracle() {
    check_cases("engine vs oracle", CASES, |rng| {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let mut pool = seed_pool(&mut m, &vars);
        audit_pool(&m, &pool, "after seeding");

        let steps = rng.range_usize(8..20);
        for step in 0..steps {
            let (f, of) = pool[rng.range_usize(0..pool.len())].clone();
            let (g, og) = pool[rng.range_usize(0..pool.len())].clone();
            let (h, oh) = pool[rng.range_usize(0..pool.len())].clone();
            let entry: Tracked = match rng.range_u32(0..7) {
                0 => (m.and(f, g).unwrap(), of.and(&og)),
                1 => (m.or(f, g).unwrap(), of.or(&og)),
                2 => (m.xor(f, g).unwrap(), of.xor(&og)),
                3 => (f.complement(), of.not()),
                4 => (m.ite(f, g, h).unwrap(), of.ite(&og, &oh)),
                5 => {
                    // Restrict is heuristic: its contract is
                    // r·c == f·c, adjudicated by the oracle; the
                    // result's own table is then read back as the
                    // ground truth for later ops.
                    let r = m.restrict(f, g).unwrap();
                    let or = Oracle::from_manager(&m, r, NVARS);
                    assert_eq!(
                        or.and(&og),
                        of.and(&og),
                        "restrict contract violated at step {step}"
                    );
                    (r, or)
                }
                _ => {
                    let vi = rng.range_usize(0..NVARS);
                    (m.compose(f, vars[vi], g).unwrap(), of.compose(vi, &og))
                }
            };
            assert_eq!(
                Oracle::from_manager(&m, entry.0, NVARS),
                entry.1,
                "result diverged from the oracle at step {step}"
            );
            audit_pool(&m, &pool, "mid-sequence");
            push(&mut pool, rng, entry);

            // Interleave collections into the op sequence itself, not
            // just at the end — GC must be safe at any boundary.
            if rng.ratio(0.15) {
                force_gc(&mut m, &mut pool);
            }
        }

        // Every case ends with the full gauntlet: collect, reorder,
        // then collect again in the reordered manager.
        force_gc(&mut m, &mut pool);
        let mut m = force_reorder(m, &mut pool);
        force_gc(&mut m, &mut pool);

        // The op-accounting identity survives everything above.
        let ops = m.op_stats();
        assert_eq!(
            ops.ite_calls,
            ops.terminal_hits + ops.cache_hits + ops.cache_misses,
            "every ite call is exactly one of terminal/hit/miss"
        );
    });
}

#[test]
fn canonicalization_preserves_semantics_and_is_idempotent() {
    check_cases("ite canonicalization", CASES, |rng| {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let mut pool = seed_pool(&mut m, &vars);
        // A few composite functions so triples see non-literal inputs.
        for _ in 0..4 {
            let (f, of) = pool[rng.range_usize(0..pool.len())].clone();
            let (g, og) = pool[rng.range_usize(0..pool.len())].clone();
            let e = match rng.range_u32(0..3) {
                0 => (m.and(f, g).unwrap(), of.and(&og)),
                1 => (m.or(f, g).unwrap(), of.or(&og)),
                _ => (m.xor(f, g).unwrap(), of.xor(&og)),
            };
            pool.push(e);
        }
        for _ in 0..16 {
            let (mut f, mut of) = pool[rng.range_usize(0..pool.len())].clone();
            let (mut g, mut og) = pool[rng.range_usize(0..pool.len())].clone();
            let (mut h, mut oh) = pool[rng.range_usize(0..pool.len())].clone();
            // Random phases multiply the variant space the
            // canonicalization must collapse.
            if rng.bool() {
                f = f.complement();
                of = of.not();
            }
            if rng.bool() {
                g = g.complement();
                og = og.not();
            }
            if rng.bool() {
                h = h.complement();
                oh = oh.not();
            }
            let want = of.ite(&og, &oh);
            match m.canonicalize_ite(f, g, h) {
                IteNorm::Done(r) => {
                    assert_eq!(
                        Oracle::from_manager(&m, r, NVARS),
                        want,
                        "terminal-rule result diverged"
                    );
                }
                IteNorm::Triple {
                    f: cf,
                    g: cg,
                    h: ch,
                    negate,
                } => {
                    assert!(
                        !cf.is_complemented() && !cf.is_const(),
                        "canonical f must be a regular decision node"
                    );
                    assert!(!cg.is_complemented(), "canonical g must be regular");
                    // Idempotence: canonicalize(canonicalize(t)) == canonicalize(t).
                    assert_eq!(
                        m.canonicalize_ite(cf, cg, ch),
                        IteNorm::Triple {
                            f: cf,
                            g: cg,
                            h: ch,
                            negate: false
                        },
                        "canonicalization must be idempotent"
                    );
                    // Semantics: ite(canonical) ⊕ negate == ite(original).
                    let r = m.ite(cf, cg, ch).unwrap().complement_if(negate);
                    assert_eq!(
                        Oracle::from_manager(&m, r, NVARS),
                        want,
                        "canonical triple changed the function"
                    );
                }
            }
            m.check_invariants().unwrap();
        }
    });
}

/// Equivalent `ite` phrasings must land on one computed-table entry:
/// after the first composite query, each symmetric/complemented variant
/// is a cache hit, not a fresh miss.
#[test]
fn structurally_equal_queries_share_cache_entries() {
    let mut m = Manager::new();
    let vars = m.new_vars(4);
    let la = m.literal(vars[0], true);
    let lb = m.literal(vars[1], true);
    let lc = m.literal(vars[2], true);
    let ld = m.literal(vars[3], true);
    let ab = m.and(la, lb).unwrap();
    let cd = m.or(lc, ld).unwrap();
    let first = m.and(ab, cd).unwrap();
    let misses = m.op_stats().cache_misses;
    // Symmetric argument order, De-Morgan phrasing, complement phases:
    // all collapse onto the cached triple.
    let variants = [
        m.and(cd, ab).unwrap(),
        m.or(ab.complement(), cd.complement()).unwrap().complement(),
    ];
    for v in variants {
        assert_eq!(v, first);
    }
    assert_eq!(
        m.op_stats().cache_misses,
        misses,
        "every variant must reuse the canonical cache entry"
    );
}

/// Roots survive a flow-embedded collection byte-identically: the whole
/// synthesis flow with GC forced at every boundary (`min_nodes: 1`)
/// must emit the same BLIF, and the same structural report, as with GC
/// disabled.
#[test]
fn flow_output_is_byte_identical_with_gc_on_and_off() {
    let suite = [
        ("csel8".to_string(), carry_select_adder(8, 2)),
        ("alu4".to_string(), alu(4)),
        (
            "rand7".to_string(),
            random_logic(
                &RandomLogicParams {
                    inputs: 12,
                    outputs: 6,
                    nodes: 40,
                    ..Default::default()
                },
                7,
            ),
        ),
    ];
    for (name, net) in suite {
        let mut gc_forced = FlowParams {
            jobs: 1,
            ..FlowParams::default()
        };
        gc_forced.gc.min_nodes = 1;
        let mut gc_off = FlowParams {
            jobs: 1,
            ..FlowParams::default()
        };
        gc_off.gc.enabled = false;

        let (on_out, on_report) = optimize(&net, &gc_forced)
            .unwrap_or_else(|e| panic!("{name}: flow with forced GC failed: {e}"));
        let (off_out, off_report) = optimize(&net, &gc_off)
            .unwrap_or_else(|e| panic!("{name}: flow with GC off failed: {e}"));

        assert_eq!(
            verify(&net, &on_out, 4_000_000).unwrap(),
            Verdict::Equivalent,
            "{name}: GC-forced result must stay equivalent to the input"
        );
        assert_eq!(
            blif::write(&on_out),
            blif::write(&off_out),
            "{name}: BLIF diverged between GC on and off"
        );
        assert_eq!(
            on_report.bdd_ops, off_report.bdd_ops,
            "{name}: op counters diverged between GC on and off"
        );
        assert_eq!(
            on_report.peak_arena_bytes, off_report.peak_arena_bytes,
            "{name}: peak arena bytes diverged between GC on and off"
        );
    }
}
