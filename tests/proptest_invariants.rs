//! Property-based tests of the core invariants, using random function
//! and network generators driven by the deterministic `bds-prop` harness.
//!
//! Beyond the semantic contracts (restrict, ISOP, reorder, transfer,
//! decompose, factor, sweep, BLIF), this suite exercises the structural
//! auditors: random operation sequences are applied to [`Manager`]s and
//! [`Network`]s with `check_invariants` called after every step, so any
//! canonical-form or DAG-consistency regression fails with a replayable
//! case seed.

use bds_prop::{check_cases, Rng};

use bds_repro::bdd::{reorder, transfer, Edge, Manager, Var};
use bds_repro::core::decompose::{DecomposeParams, Decomposer};
use bds_repro::core::factor_tree::FactorForest;
use bds_repro::network::verify::{verify, Verdict};
use bds_repro::network::{blif, EliminateParams, Network};
use bds_repro::sop::{factor::factor, Cover, Cube};

const NVARS: usize = 5;
const CASES: u32 = 64;

/// A random Boolean expression encoded as a sequence of (op, var, phase)
/// instructions folded left-to-right.
fn random_program(rng: &mut Rng) -> Vec<(u8, u8, bool)> {
    let len = rng.range_usize(1..12);
    (0..len)
        .map(|_| {
            (
                rng.range_u32(0..4) as u8,
                rng.range_u32(0..NVARS as u32) as u8,
                rng.bool(),
            )
        })
        .collect()
}

fn build_bdd(m: &mut Manager, vars: &[Var], prog: &[(u8, u8, bool)]) -> Edge {
    let mut acc = Edge::ZERO;
    for &(op, v, phase) in prog {
        let lit = m.literal(vars[v as usize], phase);
        acc = match op {
            0 => m.and(acc, lit).expect("unlimited"),
            1 => m.or(acc, lit).expect("unlimited"),
            2 => m.xor(acc, lit).expect("unlimited"),
            _ => m.ite(lit, acc, lit.complement()).expect("unlimited"),
        };
    }
    acc
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..1u32 << NVARS).map(|bits| (0..NVARS).map(|i| bits >> i & 1 == 1).collect())
}

/// restrict contract: restrict(f, c) · c == f · c.
#[test]
fn restrict_contract() {
    check_cases("restrict contract", CASES, |rng| {
        let fp = random_program(rng);
        let cp = random_program(rng);
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = build_bdd(&mut m, &vars, &fp);
        let c = build_bdd(&mut m, &vars, &cp);
        let r = m.restrict(f, c).expect("unlimited");
        let rc = m.and(r, c).expect("unlimited");
        let fc = m.and(f, c).expect("unlimited");
        assert_eq!(rc, fc);
    });
}

/// ISOP exactness: isop(f, f) rebuilds f.
#[test]
fn isop_exact() {
    check_cases("isop exact", CASES, |rng| {
        let fp = random_program(rng);
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = build_bdd(&mut m, &vars, &fp);
        let (cubes, cover) = m.isop(f, f).expect("unlimited");
        assert_eq!(cover, f);
        let rebuilt = m.sum_of_cubes(&cubes).expect("unlimited");
        assert_eq!(rebuilt, f);
    });
}

/// Reordering by sifting preserves the function pointwise, and the
/// reordered manager passes the full structural audit.
#[test]
fn sift_preserves_function() {
    check_cases("sift preserves function", CASES, |rng| {
        let fp = random_program(rng);
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = build_bdd(&mut m, &vars, &fp);
        let (m2, roots) =
            reorder::sift(&m, &[f], reorder::SiftLimits::default()).expect("unlimited");
        m2.check_invariants().expect("sifted manager is canonical");
        for assign in assignments() {
            assert_eq!(m.eval(f, &assign), m2.eval(roots[0], &assign));
        }
    });
}

/// Cross-manager transfer under the identity map preserves semantics and
/// canonical form in the destination.
#[test]
fn transfer_preserves_function() {
    check_cases("transfer preserves function", CASES, |rng| {
        let fp = random_program(rng);
        let mut src = Manager::new();
        let vars = src.new_vars(NVARS);
        let f = build_bdd(&mut src, &vars, &fp);
        let mut dst = Manager::new();
        let dvars = dst.new_vars(NVARS);
        let g = transfer::transfer(&src, &mut dst, f, &dvars).expect("unlimited");
        dst.check_invariants()
            .expect("transfer target is canonical");
        for assign in assignments() {
            assert_eq!(src.eval(f, &assign), dst.eval(g, &assign));
        }
    });
}

/// Random apply/ite/cofactor/restrict sequences keep the manager in
/// canonical form after every single step — the unique table stays
/// duplicate-free, then-edges regular, levels ordered, caches in-arena.
#[test]
fn manager_survives_random_op_sequences() {
    check_cases("manager op-sequence audit", CASES, |rng| {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let mut pool: Vec<Edge> = vars.iter().map(|&v| m.literal(v, true)).collect();
        pool.push(Edge::ZERO);
        pool.push(Edge::ONE);
        let steps = rng.range_usize(4..24);
        for _ in 0..steps {
            let f = *rng.choose(&pool);
            let g = *rng.choose(&pool);
            let h = *rng.choose(&pool);
            let var = vars[rng.range_usize(0..vars.len())];
            let produced = match rng.range_u32(0..7) {
                0 => m.and(f, g),
                1 => m.or(f, g),
                2 => m.xor(f, g),
                3 => m.ite(f, g, h),
                4 => m.cofactor(f, var, rng.bool()),
                5 => m.restrict(f, g),
                _ => Ok(f.complement()),
            };
            let e = produced.expect("node limit is unbounded in this test");
            pool.push(e);
            m.check_invariants()
                .expect("manager stays canonical after every op");
        }
        // Finish the sequence the way the flow does: sift, then transfer
        // into a fresh manager; both results must also audit clean.
        let roots: Vec<Edge> = pool.iter().copied().filter(|e| !e.is_const()).collect();
        if roots.is_empty() {
            return;
        }
        let (m2, moved) =
            reorder::sift(&m, &roots, reorder::SiftLimits::default()).expect("unlimited");
        m2.check_invariants().expect("sifted manager is canonical");
        let mut dst = Manager::new();
        let dvars = dst.new_vars(NVARS);
        let g = transfer::transfer(&m2, &mut dst, moved[0], &dvars).expect("unlimited");
        dst.check_invariants()
            .expect("transfer target is canonical");
        for assign in assignments() {
            assert_eq!(m2.eval(moved[0], &assign), dst.eval(g, &assign));
        }
    });
}

/// Decomposition soundness: the factoring tree is pointwise equal to the
/// BDD it came from, for any function and either method priority.
#[test]
fn decompose_sound() {
    check_cases("decompose sound", CASES, |rng| {
        let fp = random_program(rng);
        let balance = rng.bool();
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = build_bdd(&mut m, &vars, &fp);
        let mut forest = FactorForest::new();
        let mut dec = Decomposer::new();
        let params = DecomposeParams {
            balance_dominators: balance,
            ..Default::default()
        };
        let root = dec
            .decompose(&mut m, f, &mut forest, &params)
            .expect("unlimited");
        m.check_invariants()
            .expect("decomposition leaves the manager canonical");
        for assign in assignments() {
            assert_eq!(m.eval(f, &assign), forest.eval(root, &assign));
        }
    });
}

/// Algebraic factoring preserves the function and never increases literal
/// count.
#[test]
fn factor_sound() {
    check_cases("factor sound", CASES, |rng| {
        let ncubes = rng.range_usize(1..6);
        let cover: Cover = (0..ncubes)
            .filter_map(|_| {
                let nlits = rng.range_usize(1..4);
                Cube::new(
                    (0..nlits)
                        .map(|_| (rng.range_u32(0..NVARS as u32), rng.bool()))
                        .collect(),
                )
            })
            .collect();
        if cover.is_empty() {
            return;
        }
        let e = factor(&cover);
        for assign in assignments() {
            assert_eq!(e.eval(&assign), cover.eval(&assign));
        }
        assert!(e.literal_count() <= cover.literal_count());
    });
}

/// sweep preserves network behaviour on random gate networks and leaves a
/// structurally sound network behind.
#[test]
fn sweep_preserves_network() {
    check_cases("sweep preserves network", CASES, |rng| {
        let fp = random_program(rng);
        let seed = rng.next_u64();
        let net = random_net(&fp, seed);
        net.check_invariants()
            .expect("generator builds sound networks");
        let mut swept = net.clone();
        swept.sweep().expect("sweep succeeds on sound networks");
        swept.check_invariants().expect("sweep preserves soundness");
        for bits in 0..1u32 << net.inputs().len() {
            let assign: Vec<bool> = (0..net.inputs().len())
                .map(|i| bits >> i & 1 == 1)
                .collect();
            assert_eq!(net.eval(&assign).unwrap(), swept.eval(&assign).unwrap());
        }
    });
}

/// The sweep → eliminate → compact pipeline keeps the network auditable
/// at every stage and preserves its function.
#[test]
fn network_pipeline_stays_sound() {
    check_cases("network pipeline audit", CASES, |rng| {
        let fp = random_program(rng);
        let seed = rng.next_u64();
        let net = random_net(&fp, seed);
        let mut work = net.clone();
        work.sweep().expect("sweep");
        work.check_invariants().expect("after sweep");
        work.eliminate(&EliminateParams::default())
            .expect("eliminate");
        work.check_invariants().expect("after eliminate");
        let work = work.compacted().expect("compacted");
        work.check_invariants().expect("after compaction");
        assert_eq!(
            verify(&net, &work, 1_000_000).expect("verify"),
            Verdict::Equivalent,
            "pipeline must preserve the function"
        );
    });
}

/// BLIF write → parse → verify round trip is behaviour-preserving.
#[test]
fn blif_round_trip() {
    check_cases("blif round trip", CASES, |rng| {
        let fp = random_program(rng);
        let seed = rng.next_u64();
        let net = random_net(&fp, seed);
        let text = blif::write(&net);
        let parsed = blif::parse(&text).expect("own output must parse");
        parsed.check_invariants().expect("parsed network is sound");
        assert_eq!(
            verify(&net, &parsed, 1_000_000).expect("verify"),
            Verdict::Equivalent,
            "round trip must preserve the function"
        );
    });
}

/// Builds a small network from the expression program: a chain of 2-input
/// gates mirroring `build_bdd`'s semantics.
fn random_net(prog: &[(u8, u8, bool)], seed: u64) -> Network {
    let mut net = Network::new(format!("p{seed}"));
    let inputs: Vec<_> = (0..NVARS)
        .map(|i| net.add_input(format!("i{i}")).expect("unique"))
        .collect();
    let mut acc = net.add_constant("zero", false).expect("unique");
    for (k, &(op, v, phase)) in prog.iter().enumerate() {
        let lit_in = inputs[v as usize];
        let cover = match op {
            0 => Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, phase)])]),
            1 => Cover::from_cubes(vec![Cube::lit(0, true), Cube::lit(1, phase)]),
            2 => Cover::from_cubes(vec![
                Cube::parse(&[(0, true), (1, !phase)]),
                Cube::parse(&[(0, false), (1, phase)]),
            ]),
            _ => Cover::from_cubes(vec![
                Cube::parse(&[(1, phase), (0, true)]),
                Cube::parse(&[(1, !phase), (0, false)]),
            ]),
        };
        acc = net
            .add_node(format!("n{k}"), vec![acc, lit_in], cover)
            .expect("unique");
    }
    net.mark_output(acc).expect("valid");
    net
}

// ---------------------------------------------------------------------------
// Trace registry: the mid-flight capture protocol
// ---------------------------------------------------------------------------

/// One step of a random registry workload: open a span, close the
/// innermost one, or record a counter/gauge/histogram value.
type RegistryOp = (u8, u32, u64);

fn random_registry_program(rng: &mut Rng) -> Vec<RegistryOp> {
    let len = rng.range_usize(1..24);
    (0..len)
        .map(|_| {
            (
                rng.range_u32(0..5) as u8,
                rng.next_u64() as u32,
                rng.range_u64(0..100),
            )
        })
        .collect()
}

/// Wall-clock-free projection of a snapshot: counters, gauges, histogram
/// totals, and span call counts by path, sorted. Two runs of the same
/// program agree on this even though their span timings differ. The
/// sort matters for the spans: the tree merges by `(parent, name)`, so
/// sibling *order* is insertion-dependent (a re-opened chain root lands
/// first) and deliberately outside the round-trip contract.
fn registry_view(snap: &bds_trace::Snapshot) -> Vec<(String, u64)> {
    fn spans(prefix: &str, nodes: &[bds_trace::SpanSnap], out: &mut Vec<(String, u64)>) {
        for s in nodes {
            let path = format!("{prefix};{}", s.name);
            out.push((path.clone(), s.calls));
            spans(&path, &s.children, out);
        }
    }
    let mut view: Vec<(String, u64)> = Vec::new();
    for (name, v) in &snap.counters {
        view.push((format!("counter:{name}"), *v));
    }
    for (name, v) in &snap.gauges {
        view.push((format!("gauge:{name}"), *v));
    }
    for (name, h) in &snap.histograms {
        view.push((format!("histogram:{name}"), h.count));
    }
    spans("span", &snap.spans, &mut view);
    view.sort();
    view
}

/// Runs `prog` against a fresh registry, optionally inserting a
/// `take_snapshot_in_flight` → `restore_snapshot` pair before step
/// `round_trip_at`, and returns the final quiescent projection.
fn run_registry_program(prog: &[RegistryOp], round_trip_at: Option<usize>) -> Vec<(String, u64)> {
    const SPANS: [&str; 4] = ["flow", "flow.build", "flow.decompose", "flow.sharing"];
    const COUNTERS: [&str; 2] = ["prop.steps", "prop.nodes"];
    const GAUGES: [&str; 2] = ["prop.peak", "prop.load"];
    bds_trace::reset();
    let mut guards = Vec::new();
    for (i, &(op, sel, val)) in prog.iter().enumerate() {
        if round_trip_at == Some(i) {
            let depth = bds_trace::span_depth();
            let snap = bds_trace::take_snapshot_in_flight();
            assert_eq!(
                bds_trace::span_depth(),
                depth,
                "in-flight capture must re-open the span chain"
            );
            bds_trace::restore_snapshot(&snap);
            assert_eq!(
                bds_trace::span_depth(),
                depth,
                "restore must not disturb the open chain"
            );
        }
        let sel = sel as usize;
        match op {
            0 => guards.push(bds_trace::span_enter(SPANS[sel % SPANS.len()])),
            1 => drop(guards.pop()),
            2 => bds_trace::add_counter(COUNTERS[sel % COUNTERS.len()], val),
            3 => bds_trace::set_gauge(GAUGES[sel % GAUGES.len()], val),
            _ => bds_trace::record_histogram("prop.latency", val),
        }
    }
    drop(guards);
    registry_view(&bds_trace::take_snapshot())
}

/// The mid-flight capture protocol round-trips the registry:
/// `take_snapshot_in_flight` immediately followed by `restore_snapshot`
/// is a no-op — same counters, gauges, histogram counts, span call tree
/// and open-span depth — wherever the pair lands inside a random
/// span-nesting workload. This is the invariant the quarantined flow
/// leans on when it rolls a poisoned capture window back.
#[test]
fn in_flight_capture_then_restore_is_identity() {
    check_cases("in-flight capture round-trip", CASES, |rng| {
        let prog = random_registry_program(rng);
        let at = rng.range_usize(0..prog.len().max(1));
        let expected = run_registry_program(&prog, None);
        let actual = run_registry_program(&prog, Some(at));
        assert_eq!(
            actual, expected,
            "round-trip at step {at} changed the registry"
        );
    });
}
