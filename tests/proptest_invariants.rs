//! Property-based tests of the core invariants, using random function
//! and network generators.

use proptest::prelude::*;

use bds_repro::bdd::{reorder, transfer, Edge, Manager};
use bds_repro::core::decompose::{DecomposeParams, Decomposer};
use bds_repro::core::factor_tree::FactorForest;
use bds_repro::network::{blif, Network};
use bds_repro::sop::{factor::factor, Cover, Cube};

const NVARS: usize = 5;

/// A random Boolean expression encoded as a sequence of (op, var, phase)
/// instructions folded left-to-right.
fn expr_strategy() -> impl Strategy<Value = Vec<(u8, u8, bool)>> {
    prop::collection::vec((0u8..4, 0u8..NVARS as u8, any::<bool>()), 1..12)
}

fn build_bdd(m: &mut Manager, vars: &[bds_repro::bdd::Var], prog: &[(u8, u8, bool)]) -> Edge {
    let mut acc = Edge::ZERO;
    for &(op, v, phase) in prog {
        let lit = m.literal(vars[v as usize], phase);
        acc = match op {
            0 => m.and(acc, lit).expect("unlimited"),
            1 => m.or(acc, lit).expect("unlimited"),
            2 => m.xor(acc, lit).expect("unlimited"),
            _ => m.ite(lit, acc, lit.complement()).expect("unlimited"),
        };
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// restrict contract: restrict(f, c) · c == f · c.
    #[test]
    fn restrict_contract(fp in expr_strategy(), cp in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = build_bdd(&mut m, &vars, &fp);
        let c = build_bdd(&mut m, &vars, &cp);
        let r = m.restrict(f, c).expect("unlimited");
        let rc = m.and(r, c).expect("unlimited");
        let fc = m.and(f, c).expect("unlimited");
        prop_assert_eq!(rc, fc);
    }

    /// ISOP exactness: isop(f, f) rebuilds f.
    #[test]
    fn isop_exact(fp in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = build_bdd(&mut m, &vars, &fp);
        let (cubes, cover) = m.isop(f, f).expect("unlimited");
        prop_assert_eq!(cover, f);
        let rebuilt = m.sum_of_cubes(&cubes).expect("unlimited");
        prop_assert_eq!(rebuilt, f);
    }

    /// Reordering by sifting preserves the function pointwise.
    #[test]
    fn sift_preserves_function(fp in expr_strategy()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = build_bdd(&mut m, &vars, &fp);
        let (m2, roots) =
            reorder::sift(&m, &[f], reorder::SiftLimits::default()).expect("unlimited");
        for bits in 0..1u32 << NVARS {
            let assign: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(m.eval(f, &assign), m2.eval(roots[0], &assign));
        }
    }

    /// Cross-manager transfer under the identity map preserves semantics.
    #[test]
    fn transfer_preserves_function(fp in expr_strategy()) {
        let mut src = Manager::new();
        let vars = src.new_vars(NVARS);
        let f = build_bdd(&mut src, &vars, &fp);
        let mut dst = Manager::new();
        let dvars = dst.new_vars(NVARS);
        let g = transfer::transfer(&src, &mut dst, f, &dvars).expect("unlimited");
        for bits in 0..1u32 << NVARS {
            let assign: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(src.eval(f, &assign), dst.eval(g, &assign));
        }
    }

    /// Decomposition soundness: the factoring tree is pointwise equal to
    /// the BDD it came from, for any function and any method priority.
    #[test]
    fn decompose_sound(fp in expr_strategy(), balance in any::<bool>()) {
        let mut m = Manager::new();
        let vars = m.new_vars(NVARS);
        let f = build_bdd(&mut m, &vars, &fp);
        let mut forest = FactorForest::new();
        let mut dec = Decomposer::new();
        let params = DecomposeParams { balance_dominators: balance, ..Default::default() };
        let root = dec.decompose(&mut m, f, &mut forest, &params).expect("unlimited");
        for bits in 0..1u32 << NVARS {
            let assign: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(m.eval(f, &assign), forest.eval(root, &assign));
        }
    }

    /// Algebraic factoring preserves the function and never increases
    /// literal count.
    #[test]
    fn factor_sound(cubes in prop::collection::vec(
        prop::collection::vec((0u32..NVARS as u32, any::<bool>()), 1..4),
        1..6,
    )) {
        let cover: Cover = cubes
            .into_iter()
            .filter_map(Cube::new)
            .collect();
        prop_assume!(!cover.is_empty());
        let e = factor(&cover);
        for bits in 0..1u32 << NVARS {
            let assign: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(e.eval(&assign), cover.eval(&assign));
        }
        prop_assert!(e.literal_count() <= cover.literal_count());
    }

    /// sweep preserves network behaviour on random gate networks.
    #[test]
    fn sweep_preserves_network(fp in expr_strategy(), seed in 0u64..1000) {
        let net = random_net(&fp, seed);
        let mut swept = net.clone();
        swept.sweep();
        for bits in 0..1u32 << net.inputs().len() {
            let assign: Vec<bool> =
                (0..net.inputs().len()).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(net.eval(&assign).unwrap(), swept.eval(&assign).unwrap());
        }
    }

    /// BLIF write → parse round trip is behaviour-preserving.
    #[test]
    fn blif_round_trip(fp in expr_strategy(), seed in 0u64..1000) {
        let net = random_net(&fp, seed);
        let text = blif::write(&net);
        let parsed = blif::parse(&text).expect("own output must parse");
        for bits in 0..1u32 << net.inputs().len() {
            let assign: Vec<bool> =
                (0..net.inputs().len()).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(net.eval(&assign).unwrap(), parsed.eval(&assign).unwrap());
        }
    }
}

/// Builds a small network from the expression program: a chain of 2-input
/// gates mirroring `build_bdd`'s semantics.
fn random_net(prog: &[(u8, u8, bool)], seed: u64) -> Network {
    let mut net = Network::new(format!("p{seed}"));
    let inputs: Vec<_> = (0..NVARS)
        .map(|i| net.add_input(format!("i{i}")).expect("unique"))
        .collect();
    let mut acc = net.add_constant("zero", false).expect("unique");
    for (k, &(op, v, phase)) in prog.iter().enumerate() {
        let lit_in = inputs[v as usize];
        let cover = match op {
            0 => Cover::from_cubes(vec![Cube::parse(&[(0, true), (1, phase)])]),
            1 => Cover::from_cubes(vec![Cube::lit(0, true), Cube::lit(1, phase)]),
            2 => Cover::from_cubes(vec![
                Cube::parse(&[(0, true), (1, !phase)]),
                Cube::parse(&[(0, false), (1, phase)]),
            ]),
            _ => Cover::from_cubes(vec![
                Cube::parse(&[(1, phase), (0, true)]),
                Cube::parse(&[(1, !phase), (0, false)]),
            ]),
        };
        acc = net
            .add_node(format!("n{k}"), vec![acc, lit_in], cover)
            .expect("unique");
    }
    net.mark_output(acc).expect("valid");
    net
}
