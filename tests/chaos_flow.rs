//! Chaos differential suite: seeded fault-injection plans driven through
//! the full partitioned flow.
//!
//! The robustness contract under test:
//!
//! * **No panic escapes.** Every plan — budget exhaustion, allocation
//!   failure, or a worker panic at an arbitrary effort tick — resolves to
//!   either `Ok` with a verified-equivalent, invariant-clean netlist or a
//!   structured [`NetworkError`]. The process never aborts.
//! * **Determinism at any worker count.** For every plan the outcome at
//!   `jobs = 1` and `jobs = 4` is identical: byte-identical BLIF on
//!   success, `Display`-identical error on failure.
//! * **Fault classes resolve as designed.** Budget and allocation faults
//!   are absorbed by the degradation ladder (always `Ok`); only injected
//!   worker panics may surface, and then only as
//!   [`NetworkError::WorkerPanic`].
//! * **Injection disabled is free.** A governed-but-uninjected run is
//!   byte-identical to a default run.
//!
//! A failing plan is written to `target/chaos/failure_plan.json` so CI
//! can attach it as an artifact; replay locally with
//! `BDS_CHAOS_SEED=<seed> cargo test --test chaos_flow chaos_env_seeded`.

use std::sync::Once;

use bds_prop::chaos::{self, FaultKind, InjectionPlan};
use bds_repro::bdd::Fault;
use bds_repro::circuits::adder::carry_select_adder;
use bds_repro::core::flow::{optimize, FaultPlan, FlowParams};
use bds_repro::network::verify::{verify, Verdict};
use bds_repro::network::{blif, Network, NetworkError};

/// Suppress the default panic hook's stderr spew for *injected* panics —
/// they are caught and converted by the flow, so printing a backtrace per
/// plan would bury real failures. Genuine panics still print.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|m| m.contains("injected fault"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

fn chaos_params(jobs: usize, plan: &InjectionPlan) -> FlowParams {
    let mut p = FlowParams {
        jobs,
        // Force partitioned mode: the governor (and therefore injection)
        // lives in the per-supernode ladder.
        global_limit: 0,
        ..FlowParams::default()
    };
    // A mid-sized budget so BudgetExhausted plans interact with a real
    // limit as well as the armed fault.
    p.govern.supernode_budget = 2_000_000;
    p.govern.inject = Some(FaultPlan {
        supernode: plan.supernode,
        fault: match plan.kind {
            FaultKind::BudgetExhausted => Fault::Budget,
            FaultKind::AllocFailure => Fault::Alloc,
            FaultKind::WorkerPanic => Fault::Panic,
        },
        at_tick: plan.at_tick,
    });
    p
}

/// Records the failing plan for the CI artifact, then panics with `msg`.
fn fail_with_plan(plan: &InjectionPlan, msg: &str) -> ! {
    let dir = std::path::Path::new("target/chaos");
    let _ = std::fs::create_dir_all(dir);
    let body = format!(
        "{{\n  \"seed\": {},\n  \"kind\": \"{}\",\n  \"supernode\": {},\n  \"at_tick\": {},\n  \"failure\": {:?}\n}}\n",
        plan.seed, plan.kind, plan.supernode, plan.at_tick, msg
    );
    let _ = std::fs::write(dir.join("failure_plan.json"), body);
    panic!("chaos plan [{}] failed: {msg}", plan.describe());
}

/// Runs one plan at both worker counts and checks the differential
/// contract. Returns a short outcome tag for progress logging.
fn run_plan(net: &Network, plan: &InjectionPlan) -> &'static str {
    let seq = optimize(net, &chaos_params(1, plan));
    let par = optimize(net, &chaos_params(4, plan));
    match (seq, par) {
        (Ok((seq_out, _)), Ok((par_out, _))) => {
            let (seq_blif, par_blif) = (blif::write(&seq_out), blif::write(&par_out));
            if seq_blif != par_blif {
                fail_with_plan(plan, "BLIF diverged between jobs=1 and jobs=4");
            }
            if let Err(e) = seq_out.check_invariants() {
                fail_with_plan(plan, &format!("invariant violation: {e}"));
            }
            match verify(net, &seq_out, 4_000_000) {
                Ok(Verdict::Equivalent) => {}
                Ok(v) => fail_with_plan(plan, &format!("verify verdict {v:?}")),
                Err(e) => fail_with_plan(plan, &format!("verify failed: {e}")),
            }
            "ok"
        }
        (Err(se), Err(pe)) => {
            if plan.kind != FaultKind::WorkerPanic {
                fail_with_plan(
                    plan,
                    &format!(
                        "{} plan must be absorbed by the ladder, got: {se}",
                        plan.kind
                    ),
                );
            }
            if !matches!(se, NetworkError::WorkerPanic { .. }) {
                fail_with_plan(plan, &format!("expected WorkerPanic, got: {se}"));
            }
            if se.to_string() != pe.to_string() {
                fail_with_plan(
                    plan,
                    &format!("error diverged between jobs=1 ({se}) and jobs=4 ({pe})"),
                );
            }
            "worker-panic"
        }
        (Ok(_), Err(e)) => fail_with_plan(plan, &format!("jobs=1 Ok but jobs=4 Err: {e}")),
        (Err(e), Ok(_)) => fail_with_plan(plan, &format!("jobs=1 Err ({e}) but jobs=4 Ok")),
    }
}

#[test]
fn chaos_fixed_seed_suite() {
    quiet_injected_panics();
    let net = carry_select_adder(8, 2);
    let plans = chaos::suite(64);
    let mut outcomes = std::collections::BTreeMap::<&str, usize>::new();
    for plan in &plans {
        *outcomes.entry(run_plan(&net, plan)).or_insert(0) += 1;
    }
    eprintln!(
        "chaos_fixed_seed_suite: {} plans, outcomes {outcomes:?}",
        plans.len()
    );
    // The fixed suite must actually exercise both resolutions at least
    // once; otherwise the tick distribution has drifted out of range.
    assert!(outcomes.get("ok").copied().unwrap_or(0) > 0);
}

#[test]
fn chaos_env_seeded() {
    quiet_injected_panics();
    let seed: u64 = std::env::var("BDS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xB0D5_CA05);
    eprintln!("chaos_env_seeded: base seed {seed} (set BDS_CHAOS_SEED to replay)");
    let net = carry_select_adder(8, 2);
    let mut rng = bds_prop::Rng::new(seed);
    for _ in 0..8 {
        let plan = InjectionPlan::from_seed(rng.next_u64());
        let outcome = run_plan(&net, &plan);
        eprintln!("  plan [{}] -> {outcome}", plan.describe());
    }
}

#[test]
fn injection_disabled_is_byte_identical() {
    // Arming the governor without an injection plan (or any budget) must
    // be invisible: same bytes as the default flow.
    let net = carry_select_adder(8, 2);
    let baseline = FlowParams {
        jobs: 1,
        ..FlowParams::default()
    };
    let mut governed = baseline.clone();
    governed.govern.supernode_budget = 2_000_000;
    governed.govern.inject = None;
    let (base_out, _) = optimize(&net, &baseline).unwrap();
    let (gov_out, _) = optimize(&net, &governed).unwrap();
    assert_eq!(
        blif::write(&base_out),
        blif::write(&gov_out),
        "governed-but-untripped run must be byte-identical to default"
    );
}
