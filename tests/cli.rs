//! End-to-end tests of the `bds_opt` command-line tool.

use std::io::Write as _;
use std::process::Command;

const BLIF: &str = "\
.model cli_test
.inputs a b c d
.outputs f g
.names a b t1
10 1
01 1
.names t1 c t2
10 1
01 1
.names t2 d f
11 1
.names a b g
11 1
.end
";

fn write_input() -> std::path::PathBuf {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("bds_cli_test_{}.blif", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("temp file");
    f.write_all(BLIF.as_bytes()).expect("write");
    path
}

fn bds_opt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bds_opt"))
}

#[test]
fn optimizes_verifies_and_emits_blif() {
    let input = write_input();
    let out = bds_opt()
        .arg("--verify")
        .arg("--map")
        .arg(&input)
        .output()
        .expect("bds_opt runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("equivalent"), "must verify: {stderr}");
    assert!(stderr.contains("mapped:"), "must report mapping: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(".model"), "must emit blif");
    assert!(stdout.contains(".outputs f g"));
    // The emitted BLIF must re-parse and still be the same function.
    let reparsed = bds_repro::network::blif::parse(&stdout).expect("own output parses");
    let original = bds_repro::network::blif::parse(BLIF).expect("test input parses");
    assert_eq!(
        bds_repro::network::verify::verify(&original, &reparsed, 100_000).unwrap(),
        bds_repro::network::verify::Verdict::Equivalent
    );
    let _ = std::fs::remove_file(input);
}

#[test]
fn sis_mode_and_luts() {
    let input = write_input();
    let out = bds_opt()
        .arg("--sis")
        .arg("--stats")
        .arg("--luts")
        .arg("4")
        .arg(&input)
        .output()
        .expect("bds_opt runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("baseline:"), "{stderr}");
    assert!(stderr.contains("luts(k=4):"), "{stderr}");
    assert!(out.stdout.is_empty(), "--stats suppresses blif output");
    let _ = std::fs::remove_file(input);
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = bds_opt().arg("--frobnicate").output().expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");

    let out = bds_opt().output().expect("runs");
    assert!(!out.status.success(), "missing input file must fail");
}

#[test]
fn missing_file_reports_error() {
    let out = bds_opt()
        .arg("/nonexistent/definitely_missing.blif")
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn output_file_flag_writes_file() {
    let input = write_input();
    let outpath = std::env::temp_dir().join(format!("bds_cli_out_{}.blif", std::process::id()));
    let out = bds_opt()
        .arg("-o")
        .arg(&outpath)
        .arg(&input)
        .output()
        .expect("runs");
    assert!(out.status.success());
    let written = std::fs::read_to_string(&outpath).expect("output file written");
    assert!(written.contains(".model"));
    let _ = std::fs::remove_file(input);
    let _ = std::fs::remove_file(outpath);
}
