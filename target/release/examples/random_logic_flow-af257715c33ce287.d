/root/repo/target/release/examples/random_logic_flow-af257715c33ce287.d: examples/random_logic_flow.rs

/root/repo/target/release/examples/random_logic_flow-af257715c33ce287: examples/random_logic_flow.rs

examples/random_logic_flow.rs:
