/root/repo/target/release/deps/fpga-4598272a9e86cf4d.d: crates/bench/src/bin/fpga.rs

/root/repo/target/release/deps/fpga-4598272a9e86cf4d: crates/bench/src/bin/fpga.rs

crates/bench/src/bin/fpga.rs:
