/root/repo/target/release/deps/bds_opt-fe0e20d9f62ccfb8.d: src/bin/bds_opt.rs

/root/repo/target/release/deps/bds_opt-fe0e20d9f62ccfb8: src/bin/bds_opt.rs

src/bin/bds_opt.rs:
