/root/repo/target/release/deps/bds_network-328df1110f686545.d: crates/network/src/lib.rs crates/network/src/blif.rs crates/network/src/dot.rs crates/network/src/eliminate.rs crates/network/src/error.rs crates/network/src/global.rs crates/network/src/invariants.rs crates/network/src/network.rs crates/network/src/stats.rs crates/network/src/sweep.rs crates/network/src/verify.rs

/root/repo/target/release/deps/libbds_network-328df1110f686545.rlib: crates/network/src/lib.rs crates/network/src/blif.rs crates/network/src/dot.rs crates/network/src/eliminate.rs crates/network/src/error.rs crates/network/src/global.rs crates/network/src/invariants.rs crates/network/src/network.rs crates/network/src/stats.rs crates/network/src/sweep.rs crates/network/src/verify.rs

/root/repo/target/release/deps/libbds_network-328df1110f686545.rmeta: crates/network/src/lib.rs crates/network/src/blif.rs crates/network/src/dot.rs crates/network/src/eliminate.rs crates/network/src/error.rs crates/network/src/global.rs crates/network/src/invariants.rs crates/network/src/network.rs crates/network/src/stats.rs crates/network/src/sweep.rs crates/network/src/verify.rs

crates/network/src/lib.rs:
crates/network/src/blif.rs:
crates/network/src/dot.rs:
crates/network/src/eliminate.rs:
crates/network/src/error.rs:
crates/network/src/global.rs:
crates/network/src/invariants.rs:
crates/network/src/network.rs:
crates/network/src/stats.rs:
crates/network/src/sweep.rs:
crates/network/src/verify.rs:
