/root/repo/target/release/deps/table1-d55071baad12529c.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-d55071baad12529c: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
