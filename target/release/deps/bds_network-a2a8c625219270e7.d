/root/repo/target/release/deps/bds_network-a2a8c625219270e7.d: crates/network/src/lib.rs crates/network/src/blif.rs crates/network/src/dot.rs crates/network/src/eliminate.rs crates/network/src/error.rs crates/network/src/global.rs crates/network/src/invariants.rs crates/network/src/network.rs crates/network/src/stats.rs crates/network/src/sweep.rs crates/network/src/verify.rs

/root/repo/target/release/deps/libbds_network-a2a8c625219270e7.rlib: crates/network/src/lib.rs crates/network/src/blif.rs crates/network/src/dot.rs crates/network/src/eliminate.rs crates/network/src/error.rs crates/network/src/global.rs crates/network/src/invariants.rs crates/network/src/network.rs crates/network/src/stats.rs crates/network/src/sweep.rs crates/network/src/verify.rs

/root/repo/target/release/deps/libbds_network-a2a8c625219270e7.rmeta: crates/network/src/lib.rs crates/network/src/blif.rs crates/network/src/dot.rs crates/network/src/eliminate.rs crates/network/src/error.rs crates/network/src/global.rs crates/network/src/invariants.rs crates/network/src/network.rs crates/network/src/stats.rs crates/network/src/sweep.rs crates/network/src/verify.rs

crates/network/src/lib.rs:
crates/network/src/blif.rs:
crates/network/src/dot.rs:
crates/network/src/eliminate.rs:
crates/network/src/error.rs:
crates/network/src/global.rs:
crates/network/src/invariants.rs:
crates/network/src/network.rs:
crates/network/src/stats.rs:
crates/network/src/sweep.rs:
crates/network/src/verify.rs:
