/root/repo/target/release/deps/bds_opt-a0a6f255d39f2675.d: src/bin/bds_opt.rs

/root/repo/target/release/deps/bds_opt-a0a6f255d39f2675: src/bin/bds_opt.rs

src/bin/bds_opt.rs:
