/root/repo/target/release/deps/bds_repro-7d659a308bb14af0.d: src/lib.rs

/root/repo/target/release/deps/libbds_repro-7d659a308bb14af0.rlib: src/lib.rs

/root/repo/target/release/deps/libbds_repro-7d659a308bb14af0.rmeta: src/lib.rs

src/lib.rs:
