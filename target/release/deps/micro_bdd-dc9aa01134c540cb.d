/root/repo/target/release/deps/micro_bdd-dc9aa01134c540cb.d: crates/bench/benches/micro_bdd.rs

/root/repo/target/release/deps/micro_bdd-dc9aa01134c540cb: crates/bench/benches/micro_bdd.rs

crates/bench/benches/micro_bdd.rs:
