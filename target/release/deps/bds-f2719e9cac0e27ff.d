/root/repo/target/release/deps/bds-f2719e9cac0e27ff.d: crates/bds-core/src/lib.rs crates/bds-core/src/decompose.rs crates/bds-core/src/dominators.rs crates/bds-core/src/factor_tree.rs crates/bds-core/src/flow.rs crates/bds-core/src/gendom.rs crates/bds-core/src/lifted.rs crates/bds-core/src/mux.rs crates/bds-core/src/sdc.rs crates/bds-core/src/sharing.rs crates/bds-core/src/sis_flow.rs crates/bds-core/src/xor_decomp.rs

/root/repo/target/release/deps/libbds-f2719e9cac0e27ff.rlib: crates/bds-core/src/lib.rs crates/bds-core/src/decompose.rs crates/bds-core/src/dominators.rs crates/bds-core/src/factor_tree.rs crates/bds-core/src/flow.rs crates/bds-core/src/gendom.rs crates/bds-core/src/lifted.rs crates/bds-core/src/mux.rs crates/bds-core/src/sdc.rs crates/bds-core/src/sharing.rs crates/bds-core/src/sis_flow.rs crates/bds-core/src/xor_decomp.rs

/root/repo/target/release/deps/libbds-f2719e9cac0e27ff.rmeta: crates/bds-core/src/lib.rs crates/bds-core/src/decompose.rs crates/bds-core/src/dominators.rs crates/bds-core/src/factor_tree.rs crates/bds-core/src/flow.rs crates/bds-core/src/gendom.rs crates/bds-core/src/lifted.rs crates/bds-core/src/mux.rs crates/bds-core/src/sdc.rs crates/bds-core/src/sharing.rs crates/bds-core/src/sis_flow.rs crates/bds-core/src/xor_decomp.rs

crates/bds-core/src/lib.rs:
crates/bds-core/src/decompose.rs:
crates/bds-core/src/dominators.rs:
crates/bds-core/src/factor_tree.rs:
crates/bds-core/src/flow.rs:
crates/bds-core/src/gendom.rs:
crates/bds-core/src/lifted.rs:
crates/bds-core/src/mux.rs:
crates/bds-core/src/sdc.rs:
crates/bds-core/src/sharing.rs:
crates/bds-core/src/sis_flow.rs:
crates/bds-core/src/xor_decomp.rs:
