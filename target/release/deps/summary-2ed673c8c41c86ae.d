/root/repo/target/release/deps/summary-2ed673c8c41c86ae.d: crates/bench/src/bin/summary.rs

/root/repo/target/release/deps/summary-2ed673c8c41c86ae: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
