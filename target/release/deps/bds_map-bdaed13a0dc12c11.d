/root/repo/target/release/deps/bds_map-bdaed13a0dc12c11.d: crates/mapper/src/lib.rs crates/mapper/src/cover.rs crates/mapper/src/genlib.rs crates/mapper/src/library.rs crates/mapper/src/lut.rs crates/mapper/src/subject.rs

/root/repo/target/release/deps/libbds_map-bdaed13a0dc12c11.rlib: crates/mapper/src/lib.rs crates/mapper/src/cover.rs crates/mapper/src/genlib.rs crates/mapper/src/library.rs crates/mapper/src/lut.rs crates/mapper/src/subject.rs

/root/repo/target/release/deps/libbds_map-bdaed13a0dc12c11.rmeta: crates/mapper/src/lib.rs crates/mapper/src/cover.rs crates/mapper/src/genlib.rs crates/mapper/src/library.rs crates/mapper/src/lut.rs crates/mapper/src/subject.rs

crates/mapper/src/lib.rs:
crates/mapper/src/cover.rs:
crates/mapper/src/genlib.rs:
crates/mapper/src/library.rs:
crates/mapper/src/lut.rs:
crates/mapper/src/subject.rs:
