/root/repo/target/release/deps/bds-80df1ce169d2bf6c.d: crates/bds-core/src/lib.rs crates/bds-core/src/decompose.rs crates/bds-core/src/dominators.rs crates/bds-core/src/factor_tree.rs crates/bds-core/src/flow.rs crates/bds-core/src/gendom.rs crates/bds-core/src/lifted.rs crates/bds-core/src/mux.rs crates/bds-core/src/sdc.rs crates/bds-core/src/sharing.rs crates/bds-core/src/sis_flow.rs crates/bds-core/src/xor_decomp.rs

/root/repo/target/release/deps/libbds-80df1ce169d2bf6c.rlib: crates/bds-core/src/lib.rs crates/bds-core/src/decompose.rs crates/bds-core/src/dominators.rs crates/bds-core/src/factor_tree.rs crates/bds-core/src/flow.rs crates/bds-core/src/gendom.rs crates/bds-core/src/lifted.rs crates/bds-core/src/mux.rs crates/bds-core/src/sdc.rs crates/bds-core/src/sharing.rs crates/bds-core/src/sis_flow.rs crates/bds-core/src/xor_decomp.rs

/root/repo/target/release/deps/libbds-80df1ce169d2bf6c.rmeta: crates/bds-core/src/lib.rs crates/bds-core/src/decompose.rs crates/bds-core/src/dominators.rs crates/bds-core/src/factor_tree.rs crates/bds-core/src/flow.rs crates/bds-core/src/gendom.rs crates/bds-core/src/lifted.rs crates/bds-core/src/mux.rs crates/bds-core/src/sdc.rs crates/bds-core/src/sharing.rs crates/bds-core/src/sis_flow.rs crates/bds-core/src/xor_decomp.rs

crates/bds-core/src/lib.rs:
crates/bds-core/src/decompose.rs:
crates/bds-core/src/dominators.rs:
crates/bds-core/src/factor_tree.rs:
crates/bds-core/src/flow.rs:
crates/bds-core/src/gendom.rs:
crates/bds-core/src/lifted.rs:
crates/bds-core/src/mux.rs:
crates/bds-core/src/sdc.rs:
crates/bds-core/src/sharing.rs:
crates/bds-core/src/sis_flow.rs:
crates/bds-core/src/xor_decomp.rs:
