/root/repo/target/release/deps/table2-ee671d179e931844.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-ee671d179e931844: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
