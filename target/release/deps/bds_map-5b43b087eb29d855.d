/root/repo/target/release/deps/bds_map-5b43b087eb29d855.d: crates/mapper/src/lib.rs crates/mapper/src/cover.rs crates/mapper/src/genlib.rs crates/mapper/src/library.rs crates/mapper/src/lut.rs crates/mapper/src/subject.rs

/root/repo/target/release/deps/libbds_map-5b43b087eb29d855.rlib: crates/mapper/src/lib.rs crates/mapper/src/cover.rs crates/mapper/src/genlib.rs crates/mapper/src/library.rs crates/mapper/src/lut.rs crates/mapper/src/subject.rs

/root/repo/target/release/deps/libbds_map-5b43b087eb29d855.rmeta: crates/mapper/src/lib.rs crates/mapper/src/cover.rs crates/mapper/src/genlib.rs crates/mapper/src/library.rs crates/mapper/src/lut.rs crates/mapper/src/subject.rs

crates/mapper/src/lib.rs:
crates/mapper/src/cover.rs:
crates/mapper/src/genlib.rs:
crates/mapper/src/library.rs:
crates/mapper/src/lut.rs:
crates/mapper/src/subject.rs:
