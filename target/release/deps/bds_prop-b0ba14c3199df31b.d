/root/repo/target/release/deps/bds_prop-b0ba14c3199df31b.d: crates/prop/src/lib.rs

/root/repo/target/release/deps/libbds_prop-b0ba14c3199df31b.rlib: crates/prop/src/lib.rs

/root/repo/target/release/deps/libbds_prop-b0ba14c3199df31b.rmeta: crates/prop/src/lib.rs

crates/prop/src/lib.rs:
