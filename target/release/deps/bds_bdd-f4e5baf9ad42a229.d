/root/repo/target/release/deps/bds_bdd-f4e5baf9ad42a229.d: crates/bdd/src/lib.rs crates/bdd/src/apply.rs crates/bdd/src/cofactor.rs crates/bdd/src/count.rs crates/bdd/src/cube.rs crates/bdd/src/dot.rs crates/bdd/src/edge.rs crates/bdd/src/error.rs crates/bdd/src/invariants.rs crates/bdd/src/isop.rs crates/bdd/src/manager.rs crates/bdd/src/reorder.rs crates/bdd/src/restrict.rs crates/bdd/src/satisfy.rs crates/bdd/src/transfer.rs

/root/repo/target/release/deps/libbds_bdd-f4e5baf9ad42a229.rlib: crates/bdd/src/lib.rs crates/bdd/src/apply.rs crates/bdd/src/cofactor.rs crates/bdd/src/count.rs crates/bdd/src/cube.rs crates/bdd/src/dot.rs crates/bdd/src/edge.rs crates/bdd/src/error.rs crates/bdd/src/invariants.rs crates/bdd/src/isop.rs crates/bdd/src/manager.rs crates/bdd/src/reorder.rs crates/bdd/src/restrict.rs crates/bdd/src/satisfy.rs crates/bdd/src/transfer.rs

/root/repo/target/release/deps/libbds_bdd-f4e5baf9ad42a229.rmeta: crates/bdd/src/lib.rs crates/bdd/src/apply.rs crates/bdd/src/cofactor.rs crates/bdd/src/count.rs crates/bdd/src/cube.rs crates/bdd/src/dot.rs crates/bdd/src/edge.rs crates/bdd/src/error.rs crates/bdd/src/invariants.rs crates/bdd/src/isop.rs crates/bdd/src/manager.rs crates/bdd/src/reorder.rs crates/bdd/src/restrict.rs crates/bdd/src/satisfy.rs crates/bdd/src/transfer.rs

crates/bdd/src/lib.rs:
crates/bdd/src/apply.rs:
crates/bdd/src/cofactor.rs:
crates/bdd/src/count.rs:
crates/bdd/src/cube.rs:
crates/bdd/src/dot.rs:
crates/bdd/src/edge.rs:
crates/bdd/src/error.rs:
crates/bdd/src/invariants.rs:
crates/bdd/src/isop.rs:
crates/bdd/src/manager.rs:
crates/bdd/src/reorder.rs:
crates/bdd/src/restrict.rs:
crates/bdd/src/satisfy.rs:
crates/bdd/src/transfer.rs:
