/root/repo/target/release/deps/bds_sop-27640de84bd7461a.d: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/cube.rs crates/sop/src/division.rs crates/sop/src/expr.rs crates/sop/src/factor.rs crates/sop/src/kernel.rs

/root/repo/target/release/deps/libbds_sop-27640de84bd7461a.rlib: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/cube.rs crates/sop/src/division.rs crates/sop/src/expr.rs crates/sop/src/factor.rs crates/sop/src/kernel.rs

/root/repo/target/release/deps/libbds_sop-27640de84bd7461a.rmeta: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/cube.rs crates/sop/src/division.rs crates/sop/src/expr.rs crates/sop/src/factor.rs crates/sop/src/kernel.rs

crates/sop/src/lib.rs:
crates/sop/src/cover.rs:
crates/sop/src/cube.rs:
crates/sop/src/division.rs:
crates/sop/src/expr.rs:
crates/sop/src/factor.rs:
crates/sop/src/kernel.rs:
