/root/repo/target/release/deps/ablation-c8f0d1bf90c9d000.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-c8f0d1bf90c9d000: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
