/root/repo/target/release/deps/scaling-a700d321f02a72d7.d: crates/bench/src/bin/scaling.rs

/root/repo/target/release/deps/scaling-a700d321f02a72d7: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
