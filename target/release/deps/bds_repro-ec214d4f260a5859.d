/root/repo/target/release/deps/bds_repro-ec214d4f260a5859.d: src/lib.rs

/root/repo/target/release/deps/libbds_repro-ec214d4f260a5859.rlib: src/lib.rs

/root/repo/target/release/deps/libbds_repro-ec214d4f260a5859.rmeta: src/lib.rs

src/lib.rs:
