/root/repo/target/release/deps/bds_bench-dae2762f2a70f5ec.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libbds_bench-dae2762f2a70f5ec.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libbds_bench-dae2762f2a70f5ec.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/timing.rs:
