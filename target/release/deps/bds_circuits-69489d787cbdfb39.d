/root/repo/target/release/deps/bds_circuits-69489d787cbdfb39.d: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/alu.rs crates/circuits/src/builder.rs crates/circuits/src/comparator.rs crates/circuits/src/ecc.rs crates/circuits/src/figures.rs crates/circuits/src/misc.rs crates/circuits/src/multiplier.rs crates/circuits/src/parity.rs crates/circuits/src/random_logic.rs crates/circuits/src/shifter.rs

/root/repo/target/release/deps/libbds_circuits-69489d787cbdfb39.rlib: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/alu.rs crates/circuits/src/builder.rs crates/circuits/src/comparator.rs crates/circuits/src/ecc.rs crates/circuits/src/figures.rs crates/circuits/src/misc.rs crates/circuits/src/multiplier.rs crates/circuits/src/parity.rs crates/circuits/src/random_logic.rs crates/circuits/src/shifter.rs

/root/repo/target/release/deps/libbds_circuits-69489d787cbdfb39.rmeta: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/alu.rs crates/circuits/src/builder.rs crates/circuits/src/comparator.rs crates/circuits/src/ecc.rs crates/circuits/src/figures.rs crates/circuits/src/misc.rs crates/circuits/src/multiplier.rs crates/circuits/src/parity.rs crates/circuits/src/random_logic.rs crates/circuits/src/shifter.rs

crates/circuits/src/lib.rs:
crates/circuits/src/adder.rs:
crates/circuits/src/alu.rs:
crates/circuits/src/builder.rs:
crates/circuits/src/comparator.rs:
crates/circuits/src/ecc.rs:
crates/circuits/src/figures.rs:
crates/circuits/src/misc.rs:
crates/circuits/src/multiplier.rs:
crates/circuits/src/parity.rs:
crates/circuits/src/random_logic.rs:
crates/circuits/src/shifter.rs:
