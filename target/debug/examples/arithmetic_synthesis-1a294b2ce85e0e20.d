/root/repo/target/debug/examples/arithmetic_synthesis-1a294b2ce85e0e20.d: examples/arithmetic_synthesis.rs Cargo.toml

/root/repo/target/debug/examples/libarithmetic_synthesis-1a294b2ce85e0e20.rmeta: examples/arithmetic_synthesis.rs Cargo.toml

examples/arithmetic_synthesis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
