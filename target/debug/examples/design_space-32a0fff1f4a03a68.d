/root/repo/target/debug/examples/design_space-32a0fff1f4a03a68.d: examples/design_space.rs

/root/repo/target/debug/examples/design_space-32a0fff1f4a03a68: examples/design_space.rs

examples/design_space.rs:
