/root/repo/target/debug/examples/quickstart-3326c2b9701aeb12.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3326c2b9701aeb12: examples/quickstart.rs

examples/quickstart.rs:
