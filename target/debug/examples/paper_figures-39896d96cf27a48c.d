/root/repo/target/debug/examples/paper_figures-39896d96cf27a48c.d: examples/paper_figures.rs Cargo.toml

/root/repo/target/debug/examples/libpaper_figures-39896d96cf27a48c.rmeta: examples/paper_figures.rs Cargo.toml

examples/paper_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
