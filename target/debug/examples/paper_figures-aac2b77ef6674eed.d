/root/repo/target/debug/examples/paper_figures-aac2b77ef6674eed.d: examples/paper_figures.rs

/root/repo/target/debug/examples/paper_figures-aac2b77ef6674eed: examples/paper_figures.rs

examples/paper_figures.rs:
