/root/repo/target/debug/examples/arithmetic_synthesis-076bdf40a91c87c3.d: examples/arithmetic_synthesis.rs

/root/repo/target/debug/examples/arithmetic_synthesis-076bdf40a91c87c3: examples/arithmetic_synthesis.rs

examples/arithmetic_synthesis.rs:
