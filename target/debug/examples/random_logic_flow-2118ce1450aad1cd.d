/root/repo/target/debug/examples/random_logic_flow-2118ce1450aad1cd.d: examples/random_logic_flow.rs

/root/repo/target/debug/examples/random_logic_flow-2118ce1450aad1cd: examples/random_logic_flow.rs

examples/random_logic_flow.rs:
