/root/repo/target/debug/examples/random_logic_flow-1801d50f495e8d29.d: examples/random_logic_flow.rs Cargo.toml

/root/repo/target/debug/examples/librandom_logic_flow-1801d50f495e8d29.rmeta: examples/random_logic_flow.rs Cargo.toml

examples/random_logic_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
