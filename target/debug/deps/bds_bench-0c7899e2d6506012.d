/root/repo/target/debug/deps/bds_bench-0c7899e2d6506012.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/bds_bench-0c7899e2d6506012: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/timing.rs:
