/root/repo/target/debug/deps/scaling-0021cc8fbc72174a.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-0021cc8fbc72174a: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
