/root/repo/target/debug/deps/bds-bf9e731f00c985c8.d: crates/bds-core/src/lib.rs crates/bds-core/src/decompose.rs crates/bds-core/src/dominators.rs crates/bds-core/src/factor_tree.rs crates/bds-core/src/flow.rs crates/bds-core/src/gendom.rs crates/bds-core/src/lifted.rs crates/bds-core/src/mux.rs crates/bds-core/src/sdc.rs crates/bds-core/src/sharing.rs crates/bds-core/src/sis_flow.rs crates/bds-core/src/xor_decomp.rs

/root/repo/target/debug/deps/libbds-bf9e731f00c985c8.rlib: crates/bds-core/src/lib.rs crates/bds-core/src/decompose.rs crates/bds-core/src/dominators.rs crates/bds-core/src/factor_tree.rs crates/bds-core/src/flow.rs crates/bds-core/src/gendom.rs crates/bds-core/src/lifted.rs crates/bds-core/src/mux.rs crates/bds-core/src/sdc.rs crates/bds-core/src/sharing.rs crates/bds-core/src/sis_flow.rs crates/bds-core/src/xor_decomp.rs

/root/repo/target/debug/deps/libbds-bf9e731f00c985c8.rmeta: crates/bds-core/src/lib.rs crates/bds-core/src/decompose.rs crates/bds-core/src/dominators.rs crates/bds-core/src/factor_tree.rs crates/bds-core/src/flow.rs crates/bds-core/src/gendom.rs crates/bds-core/src/lifted.rs crates/bds-core/src/mux.rs crates/bds-core/src/sdc.rs crates/bds-core/src/sharing.rs crates/bds-core/src/sis_flow.rs crates/bds-core/src/xor_decomp.rs

crates/bds-core/src/lib.rs:
crates/bds-core/src/decompose.rs:
crates/bds-core/src/dominators.rs:
crates/bds-core/src/factor_tree.rs:
crates/bds-core/src/flow.rs:
crates/bds-core/src/gendom.rs:
crates/bds-core/src/lifted.rs:
crates/bds-core/src/mux.rs:
crates/bds-core/src/sdc.rs:
crates/bds-core/src/sharing.rs:
crates/bds-core/src/sis_flow.rs:
crates/bds-core/src/xor_decomp.rs:
