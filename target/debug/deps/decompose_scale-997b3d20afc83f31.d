/root/repo/target/debug/deps/decompose_scale-997b3d20afc83f31.d: crates/bds-core/tests/decompose_scale.rs Cargo.toml

/root/repo/target/debug/deps/libdecompose_scale-997b3d20afc83f31.rmeta: crates/bds-core/tests/decompose_scale.rs Cargo.toml

crates/bds-core/tests/decompose_scale.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
