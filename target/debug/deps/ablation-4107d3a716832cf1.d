/root/repo/target/debug/deps/ablation-4107d3a716832cf1.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-4107d3a716832cf1: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
