/root/repo/target/debug/deps/micro_bdd-2b118aaee74a9040.d: crates/bench/benches/micro_bdd.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_bdd-2b118aaee74a9040.rmeta: crates/bench/benches/micro_bdd.rs Cargo.toml

crates/bench/benches/micro_bdd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
