/root/repo/target/debug/deps/ablation-36dd31689b2594ab.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-36dd31689b2594ab: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
