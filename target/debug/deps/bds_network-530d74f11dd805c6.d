/root/repo/target/debug/deps/bds_network-530d74f11dd805c6.d: crates/network/src/lib.rs crates/network/src/blif.rs crates/network/src/dot.rs crates/network/src/eliminate.rs crates/network/src/error.rs crates/network/src/global.rs crates/network/src/invariants.rs crates/network/src/network.rs crates/network/src/stats.rs crates/network/src/sweep.rs crates/network/src/verify.rs

/root/repo/target/debug/deps/libbds_network-530d74f11dd805c6.rlib: crates/network/src/lib.rs crates/network/src/blif.rs crates/network/src/dot.rs crates/network/src/eliminate.rs crates/network/src/error.rs crates/network/src/global.rs crates/network/src/invariants.rs crates/network/src/network.rs crates/network/src/stats.rs crates/network/src/sweep.rs crates/network/src/verify.rs

/root/repo/target/debug/deps/libbds_network-530d74f11dd805c6.rmeta: crates/network/src/lib.rs crates/network/src/blif.rs crates/network/src/dot.rs crates/network/src/eliminate.rs crates/network/src/error.rs crates/network/src/global.rs crates/network/src/invariants.rs crates/network/src/network.rs crates/network/src/stats.rs crates/network/src/sweep.rs crates/network/src/verify.rs

crates/network/src/lib.rs:
crates/network/src/blif.rs:
crates/network/src/dot.rs:
crates/network/src/eliminate.rs:
crates/network/src/error.rs:
crates/network/src/global.rs:
crates/network/src/invariants.rs:
crates/network/src/network.rs:
crates/network/src/stats.rs:
crates/network/src/sweep.rs:
crates/network/src/verify.rs:
