/root/repo/target/debug/deps/proptest_invariants-94fa879b3227c475.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-94fa879b3227c475: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
