/root/repo/target/debug/deps/bds-23650bafb37e306c.d: crates/bds-core/src/lib.rs crates/bds-core/src/decompose.rs crates/bds-core/src/dominators.rs crates/bds-core/src/factor_tree.rs crates/bds-core/src/flow.rs crates/bds-core/src/gendom.rs crates/bds-core/src/lifted.rs crates/bds-core/src/mux.rs crates/bds-core/src/sdc.rs crates/bds-core/src/sharing.rs crates/bds-core/src/sis_flow.rs crates/bds-core/src/xor_decomp.rs Cargo.toml

/root/repo/target/debug/deps/libbds-23650bafb37e306c.rmeta: crates/bds-core/src/lib.rs crates/bds-core/src/decompose.rs crates/bds-core/src/dominators.rs crates/bds-core/src/factor_tree.rs crates/bds-core/src/flow.rs crates/bds-core/src/gendom.rs crates/bds-core/src/lifted.rs crates/bds-core/src/mux.rs crates/bds-core/src/sdc.rs crates/bds-core/src/sharing.rs crates/bds-core/src/sis_flow.rs crates/bds-core/src/xor_decomp.rs Cargo.toml

crates/bds-core/src/lib.rs:
crates/bds-core/src/decompose.rs:
crates/bds-core/src/dominators.rs:
crates/bds-core/src/factor_tree.rs:
crates/bds-core/src/flow.rs:
crates/bds-core/src/gendom.rs:
crates/bds-core/src/lifted.rs:
crates/bds-core/src/mux.rs:
crates/bds-core/src/sdc.rs:
crates/bds-core/src/sharing.rs:
crates/bds-core/src/sis_flow.rs:
crates/bds-core/src/xor_decomp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
