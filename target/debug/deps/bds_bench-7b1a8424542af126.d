/root/repo/target/debug/deps/bds_bench-7b1a8424542af126.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libbds_bench-7b1a8424542af126.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libbds_bench-7b1a8424542af126.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/timing.rs:
