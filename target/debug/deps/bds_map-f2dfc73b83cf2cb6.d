/root/repo/target/debug/deps/bds_map-f2dfc73b83cf2cb6.d: crates/mapper/src/lib.rs crates/mapper/src/cover.rs crates/mapper/src/genlib.rs crates/mapper/src/library.rs crates/mapper/src/lut.rs crates/mapper/src/subject.rs Cargo.toml

/root/repo/target/debug/deps/libbds_map-f2dfc73b83cf2cb6.rmeta: crates/mapper/src/lib.rs crates/mapper/src/cover.rs crates/mapper/src/genlib.rs crates/mapper/src/library.rs crates/mapper/src/lut.rs crates/mapper/src/subject.rs Cargo.toml

crates/mapper/src/lib.rs:
crates/mapper/src/cover.rs:
crates/mapper/src/genlib.rs:
crates/mapper/src/library.rs:
crates/mapper/src/lut.rs:
crates/mapper/src/subject.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
