/root/repo/target/debug/deps/bds_circuits-c42787a201c6d685.d: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/alu.rs crates/circuits/src/builder.rs crates/circuits/src/comparator.rs crates/circuits/src/ecc.rs crates/circuits/src/figures.rs crates/circuits/src/misc.rs crates/circuits/src/multiplier.rs crates/circuits/src/parity.rs crates/circuits/src/random_logic.rs crates/circuits/src/shifter.rs

/root/repo/target/debug/deps/libbds_circuits-c42787a201c6d685.rlib: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/alu.rs crates/circuits/src/builder.rs crates/circuits/src/comparator.rs crates/circuits/src/ecc.rs crates/circuits/src/figures.rs crates/circuits/src/misc.rs crates/circuits/src/multiplier.rs crates/circuits/src/parity.rs crates/circuits/src/random_logic.rs crates/circuits/src/shifter.rs

/root/repo/target/debug/deps/libbds_circuits-c42787a201c6d685.rmeta: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/alu.rs crates/circuits/src/builder.rs crates/circuits/src/comparator.rs crates/circuits/src/ecc.rs crates/circuits/src/figures.rs crates/circuits/src/misc.rs crates/circuits/src/multiplier.rs crates/circuits/src/parity.rs crates/circuits/src/random_logic.rs crates/circuits/src/shifter.rs

crates/circuits/src/lib.rs:
crates/circuits/src/adder.rs:
crates/circuits/src/alu.rs:
crates/circuits/src/builder.rs:
crates/circuits/src/comparator.rs:
crates/circuits/src/ecc.rs:
crates/circuits/src/figures.rs:
crates/circuits/src/misc.rs:
crates/circuits/src/multiplier.rs:
crates/circuits/src/parity.rs:
crates/circuits/src/random_logic.rs:
crates/circuits/src/shifter.rs:
