/root/repo/target/debug/deps/scaling-cb777b60ffa5b3e5.d: crates/bench/src/bin/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-cb777b60ffa5b3e5.rmeta: crates/bench/src/bin/scaling.rs Cargo.toml

crates/bench/src/bin/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
