/root/repo/target/debug/deps/xtask-27f2b03be0794ec9.d: crates/xtask/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxtask-27f2b03be0794ec9.rmeta: crates/xtask/src/main.rs Cargo.toml

crates/xtask/src/main.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
