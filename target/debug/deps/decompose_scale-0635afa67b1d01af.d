/root/repo/target/debug/deps/decompose_scale-0635afa67b1d01af.d: crates/bds-core/tests/decompose_scale.rs

/root/repo/target/debug/deps/decompose_scale-0635afa67b1d01af: crates/bds-core/tests/decompose_scale.rs

crates/bds-core/tests/decompose_scale.rs:
