/root/repo/target/debug/deps/network_integration-8a75de991de1ef17.d: crates/network/tests/network_integration.rs Cargo.toml

/root/repo/target/debug/deps/libnetwork_integration-8a75de991de1ef17.rmeta: crates/network/tests/network_integration.rs Cargo.toml

crates/network/tests/network_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
