/root/repo/target/debug/deps/bds_sop-0ca2227864b105af.d: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/cube.rs crates/sop/src/division.rs crates/sop/src/expr.rs crates/sop/src/factor.rs crates/sop/src/kernel.rs

/root/repo/target/debug/deps/libbds_sop-0ca2227864b105af.rlib: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/cube.rs crates/sop/src/division.rs crates/sop/src/expr.rs crates/sop/src/factor.rs crates/sop/src/kernel.rs

/root/repo/target/debug/deps/libbds_sop-0ca2227864b105af.rmeta: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/cube.rs crates/sop/src/division.rs crates/sop/src/expr.rs crates/sop/src/factor.rs crates/sop/src/kernel.rs

crates/sop/src/lib.rs:
crates/sop/src/cover.rs:
crates/sop/src/cube.rs:
crates/sop/src/division.rs:
crates/sop/src/expr.rs:
crates/sop/src/factor.rs:
crates/sop/src/kernel.rs:
