/root/repo/target/debug/deps/fpga-12b82a6446e23e5e.d: crates/bench/src/bin/fpga.rs Cargo.toml

/root/repo/target/debug/deps/libfpga-12b82a6446e23e5e.rmeta: crates/bench/src/bin/fpga.rs Cargo.toml

crates/bench/src/bin/fpga.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
