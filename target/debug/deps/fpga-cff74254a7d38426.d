/root/repo/target/debug/deps/fpga-cff74254a7d38426.d: crates/bench/src/bin/fpga.rs Cargo.toml

/root/repo/target/debug/deps/libfpga-cff74254a7d38426.rmeta: crates/bench/src/bin/fpga.rs Cargo.toml

crates/bench/src/bin/fpga.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
