/root/repo/target/debug/deps/bds_repro-7333640d084d7cfa.d: src/lib.rs

/root/repo/target/debug/deps/libbds_repro-7333640d084d7cfa.rlib: src/lib.rs

/root/repo/target/debug/deps/libbds_repro-7333640d084d7cfa.rmeta: src/lib.rs

src/lib.rs:
