/root/repo/target/debug/deps/bds_sop-96299c9064e4d5ad.d: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/cube.rs crates/sop/src/division.rs crates/sop/src/expr.rs crates/sop/src/factor.rs crates/sop/src/kernel.rs Cargo.toml

/root/repo/target/debug/deps/libbds_sop-96299c9064e4d5ad.rmeta: crates/sop/src/lib.rs crates/sop/src/cover.rs crates/sop/src/cube.rs crates/sop/src/division.rs crates/sop/src/expr.rs crates/sop/src/factor.rs crates/sop/src/kernel.rs Cargo.toml

crates/sop/src/lib.rs:
crates/sop/src/cover.rs:
crates/sop/src/cube.rs:
crates/sop/src/division.rs:
crates/sop/src/expr.rs:
crates/sop/src/factor.rs:
crates/sop/src/kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
