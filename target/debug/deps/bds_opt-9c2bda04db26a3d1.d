/root/repo/target/debug/deps/bds_opt-9c2bda04db26a3d1.d: src/bin/bds_opt.rs Cargo.toml

/root/repo/target/debug/deps/libbds_opt-9c2bda04db26a3d1.rmeta: src/bin/bds_opt.rs Cargo.toml

src/bin/bds_opt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
