/root/repo/target/debug/deps/ablation-bd95e423fe80d1d1.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-bd95e423fe80d1d1.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
