/root/repo/target/debug/deps/bds_prop-a5973e3549bdc6db.d: crates/prop/src/lib.rs

/root/repo/target/debug/deps/libbds_prop-a5973e3549bdc6db.rlib: crates/prop/src/lib.rs

/root/repo/target/debug/deps/libbds_prop-a5973e3549bdc6db.rmeta: crates/prop/src/lib.rs

crates/prop/src/lib.rs:
