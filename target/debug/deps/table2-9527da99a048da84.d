/root/repo/target/debug/deps/table2-9527da99a048da84.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-9527da99a048da84: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
