/root/repo/target/debug/deps/sop_properties-a87d3adb8b80806f.d: crates/sop/tests/sop_properties.rs

/root/repo/target/debug/deps/sop_properties-a87d3adb8b80806f: crates/sop/tests/sop_properties.rs

crates/sop/tests/sop_properties.rs:
