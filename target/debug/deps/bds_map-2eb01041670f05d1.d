/root/repo/target/debug/deps/bds_map-2eb01041670f05d1.d: crates/mapper/src/lib.rs crates/mapper/src/cover.rs crates/mapper/src/genlib.rs crates/mapper/src/library.rs crates/mapper/src/lut.rs crates/mapper/src/subject.rs

/root/repo/target/debug/deps/libbds_map-2eb01041670f05d1.rlib: crates/mapper/src/lib.rs crates/mapper/src/cover.rs crates/mapper/src/genlib.rs crates/mapper/src/library.rs crates/mapper/src/lut.rs crates/mapper/src/subject.rs

/root/repo/target/debug/deps/libbds_map-2eb01041670f05d1.rmeta: crates/mapper/src/lib.rs crates/mapper/src/cover.rs crates/mapper/src/genlib.rs crates/mapper/src/library.rs crates/mapper/src/lut.rs crates/mapper/src/subject.rs

crates/mapper/src/lib.rs:
crates/mapper/src/cover.rs:
crates/mapper/src/genlib.rs:
crates/mapper/src/library.rs:
crates/mapper/src/lut.rs:
crates/mapper/src/subject.rs:
