/root/repo/target/debug/deps/bds_network-7b4ebe413f495604.d: crates/network/src/lib.rs crates/network/src/blif.rs crates/network/src/dot.rs crates/network/src/eliminate.rs crates/network/src/error.rs crates/network/src/global.rs crates/network/src/invariants.rs crates/network/src/network.rs crates/network/src/stats.rs crates/network/src/sweep.rs crates/network/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libbds_network-7b4ebe413f495604.rmeta: crates/network/src/lib.rs crates/network/src/blif.rs crates/network/src/dot.rs crates/network/src/eliminate.rs crates/network/src/error.rs crates/network/src/global.rs crates/network/src/invariants.rs crates/network/src/network.rs crates/network/src/stats.rs crates/network/src/sweep.rs crates/network/src/verify.rs Cargo.toml

crates/network/src/lib.rs:
crates/network/src/blif.rs:
crates/network/src/dot.rs:
crates/network/src/eliminate.rs:
crates/network/src/error.rs:
crates/network/src/global.rs:
crates/network/src/invariants.rs:
crates/network/src/network.rs:
crates/network/src/stats.rs:
crates/network/src/sweep.rs:
crates/network/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
