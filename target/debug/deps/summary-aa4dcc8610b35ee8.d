/root/repo/target/debug/deps/summary-aa4dcc8610b35ee8.d: crates/bench/src/bin/summary.rs

/root/repo/target/debug/deps/summary-aa4dcc8610b35ee8: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
