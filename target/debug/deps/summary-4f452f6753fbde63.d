/root/repo/target/debug/deps/summary-4f452f6753fbde63.d: crates/bench/src/bin/summary.rs

/root/repo/target/debug/deps/summary-4f452f6753fbde63: crates/bench/src/bin/summary.rs

crates/bench/src/bin/summary.rs:
