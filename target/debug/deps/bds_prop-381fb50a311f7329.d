/root/repo/target/debug/deps/bds_prop-381fb50a311f7329.d: crates/prop/src/lib.rs

/root/repo/target/debug/deps/bds_prop-381fb50a311f7329: crates/prop/src/lib.rs

crates/prop/src/lib.rs:
