/root/repo/target/debug/deps/summary-3d8ee6b1a9c43855.d: crates/bench/src/bin/summary.rs Cargo.toml

/root/repo/target/debug/deps/libsummary-3d8ee6b1a9c43855.rmeta: crates/bench/src/bin/summary.rs Cargo.toml

crates/bench/src/bin/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
