/root/repo/target/debug/deps/fpga-471adb204e6ad202.d: crates/bench/src/bin/fpga.rs

/root/repo/target/debug/deps/fpga-471adb204e6ad202: crates/bench/src/bin/fpga.rs

crates/bench/src/bin/fpga.rs:
