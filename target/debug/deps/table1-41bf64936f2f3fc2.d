/root/repo/target/debug/deps/table1-41bf64936f2f3fc2.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-41bf64936f2f3fc2: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
