/root/repo/target/debug/deps/bds_network-4e05dd9251a09d7b.d: crates/network/src/lib.rs crates/network/src/blif.rs crates/network/src/dot.rs crates/network/src/eliminate.rs crates/network/src/error.rs crates/network/src/global.rs crates/network/src/invariants.rs crates/network/src/network.rs crates/network/src/stats.rs crates/network/src/sweep.rs crates/network/src/verify.rs

/root/repo/target/debug/deps/bds_network-4e05dd9251a09d7b: crates/network/src/lib.rs crates/network/src/blif.rs crates/network/src/dot.rs crates/network/src/eliminate.rs crates/network/src/error.rs crates/network/src/global.rs crates/network/src/invariants.rs crates/network/src/network.rs crates/network/src/stats.rs crates/network/src/sweep.rs crates/network/src/verify.rs

crates/network/src/lib.rs:
crates/network/src/blif.rs:
crates/network/src/dot.rs:
crates/network/src/eliminate.rs:
crates/network/src/error.rs:
crates/network/src/global.rs:
crates/network/src/invariants.rs:
crates/network/src/network.rs:
crates/network/src/stats.rs:
crates/network/src/sweep.rs:
crates/network/src/verify.rs:
