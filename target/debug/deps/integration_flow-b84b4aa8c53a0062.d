/root/repo/target/debug/deps/integration_flow-b84b4aa8c53a0062.d: tests/integration_flow.rs

/root/repo/target/debug/deps/integration_flow-b84b4aa8c53a0062: tests/integration_flow.rs

tests/integration_flow.rs:
