/root/repo/target/debug/deps/scaling-b600afe118bb1390.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/scaling-b600afe118bb1390: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
