/root/repo/target/debug/deps/bds_prop-660942ebda5c82e4.d: crates/prop/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbds_prop-660942ebda5c82e4.rmeta: crates/prop/src/lib.rs Cargo.toml

crates/prop/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
