/root/repo/target/debug/deps/bds_repro-2ed613bb80b35b7b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbds_repro-2ed613bb80b35b7b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
