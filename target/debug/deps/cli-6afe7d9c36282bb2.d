/root/repo/target/debug/deps/cli-6afe7d9c36282bb2.d: tests/cli.rs

/root/repo/target/debug/deps/cli-6afe7d9c36282bb2: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_bds_opt=/root/repo/target/debug/bds_opt
