/root/repo/target/debug/deps/network_integration-a064bf2b1b911a81.d: crates/network/tests/network_integration.rs

/root/repo/target/debug/deps/network_integration-a064bf2b1b911a81: crates/network/tests/network_integration.rs

crates/network/tests/network_integration.rs:
