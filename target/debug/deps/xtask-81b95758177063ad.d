/root/repo/target/debug/deps/xtask-81b95758177063ad.d: crates/xtask/src/main.rs

/root/repo/target/debug/deps/xtask-81b95758177063ad: crates/xtask/src/main.rs

crates/xtask/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
