/root/repo/target/debug/deps/bds_opt-7ad2b4059e1c7909.d: src/bin/bds_opt.rs

/root/repo/target/debug/deps/bds_opt-7ad2b4059e1c7909: src/bin/bds_opt.rs

src/bin/bds_opt.rs:
