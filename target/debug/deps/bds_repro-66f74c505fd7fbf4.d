/root/repo/target/debug/deps/bds_repro-66f74c505fd7fbf4.d: src/lib.rs

/root/repo/target/debug/deps/bds_repro-66f74c505fd7fbf4: src/lib.rs

src/lib.rs:
