/root/repo/target/debug/deps/integration_flow-6192afb2c0c3c509.d: tests/integration_flow.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_flow-6192afb2c0c3c509.rmeta: tests/integration_flow.rs Cargo.toml

tests/integration_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
