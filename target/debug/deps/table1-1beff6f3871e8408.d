/root/repo/target/debug/deps/table1-1beff6f3871e8408.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-1beff6f3871e8408: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
