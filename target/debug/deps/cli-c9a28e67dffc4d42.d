/root/repo/target/debug/deps/cli-c9a28e67dffc4d42.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-c9a28e67dffc4d42.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_bds_opt=placeholder:bds_opt
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
