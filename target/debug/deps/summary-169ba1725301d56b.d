/root/repo/target/debug/deps/summary-169ba1725301d56b.d: crates/bench/src/bin/summary.rs Cargo.toml

/root/repo/target/debug/deps/libsummary-169ba1725301d56b.rmeta: crates/bench/src/bin/summary.rs Cargo.toml

crates/bench/src/bin/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
