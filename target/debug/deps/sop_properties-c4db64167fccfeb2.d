/root/repo/target/debug/deps/sop_properties-c4db64167fccfeb2.d: crates/sop/tests/sop_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsop_properties-c4db64167fccfeb2.rmeta: crates/sop/tests/sop_properties.rs Cargo.toml

crates/sop/tests/sop_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
