/root/repo/target/debug/deps/bdd_integration-66306723c7af45e0.d: crates/bdd/tests/bdd_integration.rs

/root/repo/target/debug/deps/bdd_integration-66306723c7af45e0: crates/bdd/tests/bdd_integration.rs

crates/bdd/tests/bdd_integration.rs:
