/root/repo/target/debug/deps/bds_circuits-1b9ce0b640dc41b4.d: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/alu.rs crates/circuits/src/builder.rs crates/circuits/src/comparator.rs crates/circuits/src/ecc.rs crates/circuits/src/figures.rs crates/circuits/src/misc.rs crates/circuits/src/multiplier.rs crates/circuits/src/parity.rs crates/circuits/src/random_logic.rs crates/circuits/src/shifter.rs Cargo.toml

/root/repo/target/debug/deps/libbds_circuits-1b9ce0b640dc41b4.rmeta: crates/circuits/src/lib.rs crates/circuits/src/adder.rs crates/circuits/src/alu.rs crates/circuits/src/builder.rs crates/circuits/src/comparator.rs crates/circuits/src/ecc.rs crates/circuits/src/figures.rs crates/circuits/src/misc.rs crates/circuits/src/multiplier.rs crates/circuits/src/parity.rs crates/circuits/src/random_logic.rs crates/circuits/src/shifter.rs Cargo.toml

crates/circuits/src/lib.rs:
crates/circuits/src/adder.rs:
crates/circuits/src/alu.rs:
crates/circuits/src/builder.rs:
crates/circuits/src/comparator.rs:
crates/circuits/src/ecc.rs:
crates/circuits/src/figures.rs:
crates/circuits/src/misc.rs:
crates/circuits/src/multiplier.rs:
crates/circuits/src/parity.rs:
crates/circuits/src/random_logic.rs:
crates/circuits/src/shifter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
