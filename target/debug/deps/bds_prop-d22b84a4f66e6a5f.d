/root/repo/target/debug/deps/bds_prop-d22b84a4f66e6a5f.d: crates/prop/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbds_prop-d22b84a4f66e6a5f.rmeta: crates/prop/src/lib.rs Cargo.toml

crates/prop/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
