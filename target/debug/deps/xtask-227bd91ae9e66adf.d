/root/repo/target/debug/deps/xtask-227bd91ae9e66adf.d: crates/xtask/src/main.rs

/root/repo/target/debug/deps/xtask-227bd91ae9e66adf: crates/xtask/src/main.rs

crates/xtask/src/main.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/xtask
