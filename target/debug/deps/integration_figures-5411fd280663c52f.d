/root/repo/target/debug/deps/integration_figures-5411fd280663c52f.d: tests/integration_figures.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_figures-5411fd280663c52f.rmeta: tests/integration_figures.rs Cargo.toml

tests/integration_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
