/root/repo/target/debug/deps/bds_opt-01ebfb1cae1b8a43.d: src/bin/bds_opt.rs

/root/repo/target/debug/deps/bds_opt-01ebfb1cae1b8a43: src/bin/bds_opt.rs

src/bin/bds_opt.rs:
