/root/repo/target/debug/deps/table2-099b9059d5f183a5.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-099b9059d5f183a5: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
