/root/repo/target/debug/deps/bds_map-b4d4b035bb999d99.d: crates/mapper/src/lib.rs crates/mapper/src/cover.rs crates/mapper/src/genlib.rs crates/mapper/src/library.rs crates/mapper/src/lut.rs crates/mapper/src/subject.rs

/root/repo/target/debug/deps/bds_map-b4d4b035bb999d99: crates/mapper/src/lib.rs crates/mapper/src/cover.rs crates/mapper/src/genlib.rs crates/mapper/src/library.rs crates/mapper/src/lut.rs crates/mapper/src/subject.rs

crates/mapper/src/lib.rs:
crates/mapper/src/cover.rs:
crates/mapper/src/genlib.rs:
crates/mapper/src/library.rs:
crates/mapper/src/lut.rs:
crates/mapper/src/subject.rs:
