/root/repo/target/debug/deps/bds_opt-3d579a328ac2d5bd.d: src/bin/bds_opt.rs Cargo.toml

/root/repo/target/debug/deps/libbds_opt-3d579a328ac2d5bd.rmeta: src/bin/bds_opt.rs Cargo.toml

src/bin/bds_opt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
