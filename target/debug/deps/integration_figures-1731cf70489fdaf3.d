/root/repo/target/debug/deps/integration_figures-1731cf70489fdaf3.d: tests/integration_figures.rs

/root/repo/target/debug/deps/integration_figures-1731cf70489fdaf3: tests/integration_figures.rs

tests/integration_figures.rs:
