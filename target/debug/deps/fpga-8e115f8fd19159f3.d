/root/repo/target/debug/deps/fpga-8e115f8fd19159f3.d: crates/bench/src/bin/fpga.rs

/root/repo/target/debug/deps/fpga-8e115f8fd19159f3: crates/bench/src/bin/fpga.rs

crates/bench/src/bin/fpga.rs:
