/root/repo/target/debug/deps/bdd_integration-b4f0649627ec7347.d: crates/bdd/tests/bdd_integration.rs Cargo.toml

/root/repo/target/debug/deps/libbdd_integration-b4f0649627ec7347.rmeta: crates/bdd/tests/bdd_integration.rs Cargo.toml

crates/bdd/tests/bdd_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
