/root/repo/target/debug/deps/bds_bench-e81d66e8818009aa.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libbds_bench-e81d66e8818009aa.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/timing.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
