/root/repo/target/debug/libbds_prop.rlib: /root/repo/crates/prop/src/lib.rs
