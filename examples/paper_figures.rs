//! Reproduces every worked example of the paper's figures: builds each
//! figure's function, runs the BDS decomposition engine on it, and prints
//! the resulting factoring tree next to the paper's expected result.
//!
//! Run with: `cargo run --example paper_figures`

use bds_repro::circuits::figures::all_figures;
use bds_repro::core::decompose::{DecomposeParams, Decomposer};
use bds_repro::core::factor_tree::FactorForest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for fig in all_figures() {
        let mut mgr = fig.manager;
        let mut forest = FactorForest::new();
        let mut dec = Decomposer::new();
        let params = DecomposeParams::default();
        println!("{}", fig.label);
        println!("  paper: {}", fig.expectation);
        for (i, &f) in fig.functions.iter().enumerate() {
            let root = dec.decompose(&mut mgr, f, &mut forest, &params)?;
            // Exhaustively confirm the factoring tree equals the BDD.
            let n = mgr.var_count();
            for bits in 0..1u32 << n {
                let assign: Vec<bool> = (0..n).map(|k| bits >> k & 1 == 1).collect();
                assert_eq!(
                    mgr.eval(f, &assign),
                    forest.eval(root, &assign),
                    "{}: mismatch",
                    fig.label
                );
            }
            println!(
                "  ours[{i}]: {}   ({} literals)",
                forest.display(root, &mgr),
                forest.literal_count(root)
            );
        }
        println!("  methods used: {:?}", dec.stats);
        println!();
    }
    println!("all figures reproduced and verified exhaustively.");
    Ok(())
}
