//! Quickstart: optimize a small BLIF circuit with the BDS flow.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Parses a BLIF description, runs the full BDS synthesis flow (sweep →
//! eliminate → reorder → BDD decomposition → sharing extraction), checks
//! equivalence against the original, maps onto the built-in mcnc-style
//! library, and prints the optimized BLIF.

use bds_repro::core::flow::{optimize, FlowParams};
use bds_repro::map::{map_network, Library};
use bds_repro::network::blif;
use bds_repro::network::verify::{verify, Verdict};

const INPUT: &str = "\
.model quickstart
.inputs a b c d
.outputs f g
# f = a·b·c + a·b·d  — hides the factor a·b·(c+d)
.names a b c t1
111 1
.names a b d t2
111 1
.names t1 t2 f
1- 1
-1 1
# g = (a ⊕ b) ⊕ c — XOR-intensive
.names a b t3
10 1
01 1
.names t3 c g
10 1
01 1
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = blif::parse(INPUT)?;
    println!("original:  {}", original.stats());

    let (optimized, report) = optimize(&original, &FlowParams::default())?;
    println!("optimized: {}", optimized.stats());
    println!(
        "flow: mode={:?}, {:.3}s, decomposition steps: {:?}",
        report.mode, report.seconds, report.decompose
    );

    match verify(&original, &optimized, 1_000_000)? {
        Verdict::Equivalent => println!("verification: equivalent ✓"),
        Verdict::Inequivalent { output } => {
            return Err(format!("verification FAILED on output {output}").into())
        }
    }

    let mapped = map_network(&optimized, &Library::mcnc())?;
    println!(
        "mapped: {} gates, area {:.0}, delay {:.2} ({:?})",
        mapped.gate_count, mapped.area, mapped.delay, mapped.gate_histogram
    );

    println!("\noptimized blif:\n{}", blif::write(&optimized));
    Ok(())
}
