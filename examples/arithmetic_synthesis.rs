//! Domain scenario: synthesizing arithmetic circuits (the workload class
//! where the paper shows BDS decisively beating algebraic synthesis).
//!
//! Generates an array multiplier and a barrel shifter, runs both the BDS
//! flow and the SIS-style baseline, verifies both results, and compares
//! mapped area/delay and CPU time.
//!
//! Run with: `cargo run --release --example arithmetic_synthesis`

use bds_repro::circuits::multiplier::multiplier;
use bds_repro::circuits::shifter::barrel_shifter;
use bds_repro::core::flow::{optimize, FlowParams};
use bds_repro::core::sis_flow::{script_rugged, SisParams};
use bds_repro::map::{map_network, Library};
use bds_repro::network::verify::{verify, verify_by_simulation, Verdict};
use bds_repro::network::Network;

fn compare(name: &str, net: &Network) -> Result<(), Box<dyn std::error::Error>> {
    println!("--- {name}: {} ---", net.stats());
    let lib = Library::mcnc();

    let (sis_net, sis_rep) = script_rugged(net, &SisParams::default())?;
    let sis_map = map_network(&sis_net, &lib)?;
    println!(
        "baseline: {:5} gates, area {:8.0}, delay {:6.2}, {:.3}s",
        sis_map.gate_count, sis_map.area, sis_map.delay, sis_rep.seconds
    );

    let (bds_net, bds_rep) = optimize(net, &FlowParams::default())?;
    let bds_map = map_network(&bds_net, &lib)?;
    println!(
        "bds ({:?}): {:5} gates, area {:8.0}, delay {:6.2}, {:.3}s  (speedup {:.1}x)",
        bds_rep.mode,
        bds_map.gate_count,
        bds_map.area,
        bds_map.delay,
        bds_rep.seconds,
        sis_rep.seconds / bds_rep.seconds.max(1e-9)
    );

    for (tag, result) in [("baseline", &sis_net), ("bds", &bds_net)] {
        let verdict = match verify(net, result, 2_000_000) {
            Ok(v) => v,
            Err(_) => verify_by_simulation(net, result, 256, 99)?,
        };
        match verdict {
            Verdict::Equivalent => println!("verify {tag}: equivalent ✓"),
            Verdict::Inequivalent { output } => {
                return Err(format!("{tag} differs on {output}").into())
            }
        }
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    compare("m4x4 multiplier", &multiplier(4, 4))?;
    compare("bshift16 barrel shifter", &barrel_shifter(16))?;
    println!("paper shape: BDS ties or wins on quality and wins big on CPU as sizes grow.");
    Ok(())
}
