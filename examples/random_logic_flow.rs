//! Domain scenario: AND/OR-intensive control logic — the class where the
//! paper reports BDS roughly matching SIS quality while running much
//! faster.
//!
//! Generates seeded random control networks, optimizes with both flows,
//! verifies, and prints per-seed and aggregate comparisons.
//!
//! Run with: `cargo run --release --example random_logic_flow`

use bds_repro::circuits::random_logic::{random_logic, RandomLogicParams};
use bds_repro::core::flow::{optimize, FlowParams};
use bds_repro::core::sis_flow::{script_rugged, SisParams};
use bds_repro::map::{map_network, Library};
use bds_repro::network::verify::{verify, Verdict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::mcnc();
    let params = RandomLogicParams {
        inputs: 12,
        outputs: 6,
        nodes: 40,
        ..Default::default()
    };
    let mut totals = (0.0f64, 0.0f64, 0usize, 0usize);
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "seed", "sis-area", "bds-area", "sis-cpu", "bds-cpu", "verify"
    );
    for seed in 0..6u64 {
        let net = random_logic(&params, 2000 + seed);
        let (sis_net, sis_rep) = script_rugged(&net, &SisParams::default())?;
        let (bds_net, bds_rep) = optimize(&net, &FlowParams::default())?;
        let sis_map = map_network(&sis_net, &lib)?;
        let bds_map = map_network(&bds_net, &lib)?;
        let ok = verify(&net, &sis_net, 1_000_000)? == Verdict::Equivalent
            && verify(&net, &bds_net, 1_000_000)? == Verdict::Equivalent;
        println!(
            "{:<8} {:>10.0} {:>10.0} {:>9.3}s {:>9.3}s {:>8}",
            seed,
            sis_map.area,
            bds_map.area,
            sis_rep.seconds,
            bds_rep.seconds,
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            return Err("verification failed".into());
        }
        totals.0 += sis_map.area;
        totals.1 += bds_map.area;
        totals.2 += sis_map.gate_count;
        totals.3 += bds_map.gate_count;
    }
    println!(
        "\naggregate: area ratio BDS/SIS = {:.2}, gate ratio = {:.2}",
        totals.1 / totals.0,
        totals.3 as f64 / totals.2 as f64
    );
    println!("paper shape: near parity on quality for this class, BDS faster.");
    Ok(())
}
