//! Domain scenario: exploring the decomposition design space.
//!
//! The BDS paper orders its decomposition methods empirically (§IV-C)
//! and leaves tree balancing as future work (§VI item 3). This example
//! uses the public `DecomposeParams` knobs to measure those choices on a
//! mixed workload — the programmatic version of the `ablation` harness.
//!
//! Run with: `cargo run --release --example design_space`

use bds_repro::circuits::adder::ripple_adder;
use bds_repro::circuits::parity::parity_chain;
use bds_repro::core::decompose::{DecomposeParams, Method};
use bds_repro::core::flow::{optimize, FlowParams};
use bds_repro::map::{map_network, map_network_luts, Library};
use bds_repro::network::verify::{verify, Verdict};
use bds_repro::network::Network;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::mcnc();
    let circuits: Vec<(&str, Network)> = vec![
        ("add10", ripple_adder(10)),
        ("paritych14", parity_chain(14)),
    ];

    let variants: Vec<(&str, DecomposeParams)> = vec![
        ("paper order", DecomposeParams::default()),
        (
            "no xnor",
            DecomposeParams {
                priority: vec![
                    Method::SimpleDominators,
                    Method::FunctionalMux,
                    Method::GeneralizedDominator,
                ],
                ..DecomposeParams::default()
            },
        ),
        (
            "shannon only",
            DecomposeParams {
                priority: Vec::new(),
                ..DecomposeParams::default()
            },
        ),
        (
            "deepest dominator",
            DecomposeParams {
                balance_dominators: false,
                ..DecomposeParams::default()
            },
        ),
    ];

    for (cname, net) in &circuits {
        println!("--- {cname} ({}) ---", net.stats());
        for (vname, dparams) in &variants {
            let params = FlowParams {
                decompose: dparams.clone(),
                ..FlowParams::default()
            };
            let (out, report) = optimize(net, &params)?;
            if verify(net, &out, 2_000_000)? != Verdict::Equivalent {
                return Err(format!("{cname}/{vname}: inequivalent result").into());
            }
            let m = map_network(&out, &lib)?;
            let l = map_network_luts(&out, 4)?;
            println!(
                "{vname:<18} area {:>7.0}  gates {:>4}  delay {:>6.2}  4-luts {:>3} (depth {:>2})  xnor-steps {}",
                m.area,
                m.gate_count,
                m.delay,
                l.luts,
                l.depth,
                report.decompose.xnor_dom + report.decompose.gen_xdom,
            );
        }
        println!();
    }
    println!("shape: the structural variants tie on area here but separate sharply on");
    println!("delay and LUT depth — balanced mid-chain dominators (the paper's future-");
    println!("work 3) cut parity-chain depth ~3x vs Shannon/deepest-dominator variants.");
    Ok(())
}
