//! Shim: runs [`bds_bench::bins::fpga`] so the experiment is
//! `cargo run --release --bin fpga` from the workspace root.

use std::process::ExitCode;

fn main() -> ExitCode {
    bds_bench::bins::fpga::main()
}
