//! Shim: runs [`bds_bench::bins::table2`] so the experiment is
//! `cargo run --release --bin table2` from the workspace root.

use std::process::ExitCode;

fn main() -> ExitCode {
    bds_bench::bins::table2::main()
}
