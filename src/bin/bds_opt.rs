//! `bds_opt` — the command-line face of the reproduction: optimize a
//! BLIF file like the original `bds` binary did.
//!
//! ```text
//! USAGE: bds_opt [OPTIONS] <input.blif>
//!   --sis           run the SIS-style algebraic baseline instead of BDS
//!   --sdc           enable satisfiability-don't-care simplification
//!   --verify        equivalence-check the result against the input
//!   --map           report mapped area/delay (built-in mcnc-like library)
//!   --genlib FILE   map with a genlib library file instead
//!   --luts K        report K-LUT mapping results
//!   --stats         print before/after statistics only (no BLIF output)
//!   -o FILE         write the optimized BLIF to FILE (default: stdout)
//! ```
//!
//! Example: `cargo run --release --bin bds_opt -- --verify --map circuit.blif`

use std::io::Write as _;
use std::process::ExitCode;

use bds_repro::core::flow::{optimize, FlowParams};
use bds_repro::core::sis_flow::{script_rugged, SisParams};
use bds_repro::map::{map_network, map_network_luts, parse_genlib, Library};
use bds_repro::network::blif;
use bds_repro::network::verify::{verify, verify_by_simulation, Verdict};

struct Options {
    input: String,
    output: Option<String>,
    sis: bool,
    sdc: bool,
    verify: bool,
    map: bool,
    genlib: Option<String>,
    luts: Option<usize>,
    stats_only: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        input: String::new(),
        output: None,
        sis: false,
        sdc: false,
        verify: false,
        map: false,
        genlib: None,
        luts: None,
        stats_only: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sis" => opts.sis = true,
            "--sdc" => opts.sdc = true,
            "--verify" => opts.verify = true,
            "--map" => opts.map = true,
            "--stats" => opts.stats_only = true,
            "--genlib" => {
                opts.genlib = Some(args.next().ok_or("--genlib requires a file")?);
                opts.map = true;
            }
            "--luts" => {
                let k = args.next().ok_or("--luts requires a number")?;
                opts.luts = Some(k.parse().map_err(|_| format!("bad LUT size `{k}`"))?);
            }
            "-o" => opts.output = Some(args.next().ok_or("-o requires a file")?),
            "-h" | "--help" => return Err("help".into()),
            other if !other.starts_with('-') && opts.input.is_empty() => {
                opts.input = other.to_string();
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if opts.input.is_empty() {
        return Err("missing input file".into());
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: bds_opt [--sis] [--sdc] [--verify] [--map] [--genlib FILE] [--luts K] [--stats] [-o FILE] <input.blif>"
    );
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if e != "help" {
                eprintln!("error: {e}");
            }
            usage();
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(&opts.input)?;
    let net = blif::parse(&text)?;
    eprintln!("input:     {}", net.stats());

    let (result, label) = if opts.sis {
        let (out, report) = script_rugged(&net, &SisParams::default())?;
        eprintln!(
            "baseline:  {} ({} extracted, {} resubstituted, {:.3}s)",
            out.stats(),
            report.extracted,
            report.resubstituted,
            report.seconds
        );
        (out, "sis")
    } else {
        let mut params = FlowParams::default();
        if opts.sdc {
            params.sdc = Some(bds_repro::core::sdc::SdcParams::default());
        }
        let (out, report) = optimize(&net, &params)?;
        eprintln!(
            "bds:       {} ({:?} mode, {:.3}s, peak {} bdd nodes)",
            out.stats(),
            report.mode,
            report.seconds,
            report.peak_bdd_nodes
        );
        (out, "bds")
    };

    if opts.verify {
        let verdict = match verify(&net, &result, 4_000_000) {
            Ok(v) => v,
            Err(_) => {
                eprintln!("verify:    global BDDs too large — falling back to simulation");
                verify_by_simulation(&net, &result, 1024, 0xB5D5)?
            }
        };
        match verdict {
            Verdict::Equivalent => eprintln!("verify:    equivalent ✓"),
            Verdict::Inequivalent { output } => {
                return Err(format!("result differs from input on output `{output}`").into())
            }
        }
    }

    if opts.map {
        let lib = match &opts.genlib {
            Some(path) => parse_genlib(&std::fs::read_to_string(path)?)?,
            None => Library::mcnc(),
        };
        let mapped = map_network(&result, &lib)?;
        eprintln!(
            "mapped:    {} gates, area {:.1}, delay {:.2}",
            mapped.gate_count, mapped.area, mapped.delay
        );
    }
    if let Some(k) = opts.luts {
        let l = map_network_luts(&result, k)?;
        eprintln!("luts(k={k}): {} luts, depth {}", l.luts, l.depth);
    }

    if !opts.stats_only {
        let blif_text = blif::write(&result);
        match &opts.output {
            Some(path) => std::fs::write(path, blif_text)?,
            None => {
                std::io::stdout().write_all(blif_text.as_bytes())?;
            }
        }
        let _ = label;
    }
    Ok(())
}
