//! Shim: runs [`bds_bench::bins::summary`] so the experiment is
//! `cargo run --release --bin summary` from the workspace root.

use std::process::ExitCode;

fn main() -> ExitCode {
    bds_bench::bins::summary::main()
}
