//! Shim: runs [`bds_bench::bins::scaling`] so the experiment is
//! `cargo run --release --bin scaling` from the workspace root.

use std::process::ExitCode;

fn main() -> ExitCode {
    bds_bench::bins::scaling::main()
}
