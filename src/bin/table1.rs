//! Shim: runs [`bds_bench::bins::table1`] so the experiment is
//! `cargo run --release --bin table1` from the workspace root.

use std::process::ExitCode;

fn main() -> ExitCode {
    bds_bench::bins::table1::main()
}
