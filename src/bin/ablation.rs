//! Shim: runs [`bds_bench::bins::ablation`] so the experiment is
//! `cargo run --release --bin ablation` from the workspace root.

use std::process::ExitCode;

fn main() -> ExitCode {
    bds_bench::bins::ablation::main()
}
