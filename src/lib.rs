//! Umbrella crate for the BDS reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so examples and
//! downstream users can depend on a single crate:
//!
//! * [`bdd`] — the ROBDD package (complement edges, ITE, restrict,
//!   reordering, transfer),
//! * [`sop`] — cube/SOP algebra (kernels, algebraic division, factoring),
//! * [`network`] — multi-level Boolean networks with BLIF I/O, sweep,
//!   eliminate and equivalence checking,
//! * [`core`] — the BDS decomposition engine and synthesis flows,
//! * [`map`] — the tree-covering technology mapper,
//! * [`circuits`] — benchmark circuit generators.
//!
//! See `README.md` for a tour and `examples/` for runnable entry points.

#![forbid(unsafe_code)]

pub use bds as core;
pub use bds_bdd as bdd;
pub use bds_circuits as circuits;
pub use bds_map as map;
pub use bds_network as network;
pub use bds_sop as sop;
